#include "core/tournament_dispersion.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "util/flat_hash.h"

#include "core/dispersion_using_map.h"
#include "core/protocol_slack.h"
#include "explore/engine_map.h"

namespace bdg::core {
namespace {

using explore::MapFindConfig;
using explore::MapFindOutcome;

struct TournamentConfig {
  /// The pairing schedule, built ONCE by the planner from the sorted ids
  /// (single source of truth: the plan's window count is derived from
  /// windows->size(), so the coroutine and the round bound cannot drift)
  /// and shared by every robot of the instance.
  std::shared_ptr<const std::vector<PairingWindow>> windows;
  std::uint32_t n = 0;
  std::uint32_t f = 0;           ///< adversary budget (vote thresholds)
  Round t2 = 0;                  ///< one map-finding window
  Round gather_rounds = 0;       ///< 0 when initially gathered
  std::vector<Port> rally_path;  ///< robot's own path to the rally node
  Round phase_rounds = 0;        ///< dispersion phase length
  bool batched = true;           ///< map-cache + fast-path pairing windows
};

/// Per-robot Phase 2 state threaded through the window halves.
struct Phase2State {
  std::vector<CanonicalCode> votes;
  /// How many distinct windows fully built each code (batched mode only).
  /// Flat open-addressing: only counted lookups and one erase, no ordered
  /// iteration, so table order never reaches an outcome.
  util::FlatMap<CanonicalCode, std::uint32_t> build_counts;
  /// Code self-built in f+1 distinct windows. At most f partners can lie
  /// and every partner appears in exactly one window, so at least one of
  /// those f+1 builds ran against an honest token — and a build with an
  /// honest token provably yields the true map. Sound for any f that
  /// really bounds the liars; the verify walk below catches the rest.
  std::optional<CanonicalCode> confirmed_code;
  std::optional<Graph> confirmed_map;
  /// The confirmed map also passed a physical verify-only walk.
  bool self_checked = false;
};

void note_build(Phase2State& st, const CanonicalCode& code,
                const TournamentConfig& cfg) {
  if (st.confirmed_code.has_value()) return;
  if (++st.build_counts[code] < cfg.f + 1) return;
  auto map = decode_map(code, cfg.n);
  if (!map.has_value()) return;  // unreachable for self-built codes
  st.confirmed_code = code;
  st.confirmed_map = std::move(map);
}

/// One window half with this robot as the agent. Unbatched (or before a
/// code is confirmed): full build, exactly the original protocol. After
/// confirmation: one verify-only walk cross-checks the cache against the
/// physical graph (any mismatch drops the cache and rebuilds in-window),
/// then every later agent half publishes in its first round and sleeps.
sim::Task<void> agent_half(sim::Ctx ctx, const TournamentConfig& cfg,
                           const MapFindConfig& mine, Phase2State& st) {
  if (!cfg.batched || !st.confirmed_code.has_value()) {
    const MapFindOutcome out = co_await explore::run_map_agent(ctx, mine);
    if (out.code.has_value()) {
      st.votes.push_back(*out.code);
      if (cfg.batched) note_build(st, *out.code, cfg);
    }
    co_return;
  }
  if (!st.self_checked) {
    const MapFindOutcome out = co_await explore::run_map_agent_cached(
        ctx, mine, *st.confirmed_map, *st.confirmed_code);
    if (out.verified_cache) {
      st.self_checked = true;
      st.votes.push_back(*out.code);
    } else {
      // The walk contradicted the confirmed map — only reachable when the
      // adversary exceeds the declared budget f. Drop the poisoned cache;
      // the window already fell back to a full rebuild.
      st.build_counts.erase(*st.confirmed_code);
      st.confirmed_code.reset();
      st.confirmed_map.reset();
      if (out.code.has_value()) {
        st.votes.push_back(*out.code);
        note_build(st, *out.code, cfg);
      }
    }
    co_return;
  }
  const MapFindOutcome out =
      co_await explore::run_map_publish(ctx, mine, *st.confirmed_code);
  st.votes.push_back(*out.code);
}

sim::Proc tournament_robot(sim::Ctx ctx, TournamentConfig cfg) {
  // Phase 1: gathering (oracle-charged; see DESIGN.md substitution 2).
  if (cfg.gather_rounds > 0) {
    gather::GatheringSpec spec{cfg.rally_path, cfg.gather_rounds};
    co_await gather::run_oracle_gathering(ctx, std::move(spec));
  }

  // Phase 2: all-pairs map finding. Every window is exactly 2*t2 rounds
  // for every robot, so the fleet stays synchronized whatever happens.
  const Round phase2_start = ctx.round();
  Phase2State st;
  std::size_t w = 0;
  for (const PairingWindow& win : *cfg.windows) {
    ++w;
    std::optional<sim::RobotId> partner;
    for (const auto& [a, b] : win) {
      if (a == ctx.self()) partner = b;
      if (b == ctx.self()) partner = a;
    }
    if (!partner.has_value()) {
      co_await ctx.sleep_rounds(2 * cfg.t2);
    } else {
      MapFindConfig mine, theirs;
      mine.agents = {ctx.self()};
      mine.tokens = {*partner};
      mine.round_budget = cfg.t2;
      mine.n = cfg.n;
      theirs.agents = {*partner};
      theirs.tokens = {ctx.self()};
      theirs.round_budget = cfg.t2;
      theirs.n = cfg.n;
      // In the pair setting the token may close its half on the first
      // instruction-less round (see MapFindConfig::early_close).
      theirs.early_close = cfg.batched;
      // The smaller ID explores first; then the roles swap. Only the maps a
      // robot built ITSELF as the agent enter its majority vote — it never
      // trusts a partner's claims.
      if (ctx.self() < *partner) {
        co_await agent_half(ctx, cfg, mine, st);
        (void)co_await explore::run_map_token(ctx, theirs);
      } else {
        (void)co_await explore::run_map_token(ctx, theirs);
        co_await agent_half(ctx, cfg, mine, st);
      }
    }
    // Window-synchrony invariant: every honest robot ends window w at
    // exactly phase2_start + w * 2*t2 (idle halves are padded by
    // idle_rest, overspending is prevented by the kAgentOpReserve /
    // kTokenStepReserve margins), so both partners of every pair agree on
    // every window boundary. A violation is an internal protocol bug —
    // Byzantine behavior cannot cause it — so fail loudly.
    if (ctx.round() != phase2_start + Round(w) * (2 * cfg.t2))
      throw std::logic_error(
          "tournament_robot: pairing-window desync (protocol slack "
          "constants out of step with the window protocol?)");
  }

  const auto code = majority_code(st.votes, cfg.f);
  const auto map = code.has_value() ? decode_map(*code, cfg.n) : std::nullopt;
  if (!map.has_value()) co_return;  // tolerance exceeded; verifier will flag

  // Phase 3: disperse from the rally node (map node 0).
  DispersionParams params;
  params.map = *map;
  params.map_root = 0;
  params.phase_rounds = cfg.phase_rounds;
  (void)co_await run_dispersion_using_map(ctx, std::move(params));
}

}  // namespace

AlgorithmPlan plan_tournament_dispersion(const Graph& g,
                                         std::vector<sim::RobotId> ids,
                                         bool gathered, std::uint32_t f,
                                         const gather::CostModel& cost,
                                         bool batched) {
  std::sort(ids.begin(), ids.end());
  if (!ids.empty() && ids.front() == 0)
    throw std::invalid_argument(
        "plan_tournament_dispersion: robot id 0 is reserved (the pairing "
        "schedule uses it as the dummy-bye marker)");
  const auto n = static_cast<std::uint32_t>(g.n());
  const Round t2 = explore::default_map_window(n);
  const Round phase = dispersion_phase_rounds(n);
  const std::uint32_t lambda =
      gather::CostModel::id_bits(ids.empty() ? 1 : ids.back());
  const Round gather_rounds =
      gathered ? Round(0)
               : std::max<Round>(
                     cost.rounds(gather::GatherKind::kWeakDPP, n, f, lambda),
                     2 * g.n());  // at least enough to physically walk
  // Single source of truth for the pairing phase length: the schedule the
  // robots will actually run. (The planner used to recompute the window
  // count with its own k-padding arithmetic, which could drift from the
  // coroutine's schedule and desync plan.total_rounds from the run.)
  auto windows = std::make_shared<const std::vector<PairingWindow>>(
      round_robin_schedule(ids));
  const Round pairing_rounds = Round(windows->size()) * 2 * t2;

  AlgorithmPlan plan;
  plan.total_rounds = gather_rounds + pairing_rounds + phase + kPlanCloseSlack;
  plan.byz_wake_round = gather_rounds;
  plan.honest = [=, g = &g](sim::RobotId, NodeId start) -> sim::ProgramFactory {
    TournamentConfig cfg;
    cfg.windows = windows;
    cfg.n = n;
    cfg.f = f;
    cfg.t2 = t2;
    cfg.gather_rounds = gather_rounds;
    cfg.phase_rounds = phase;
    cfg.batched = batched;
    if (gather_rounds > 0) {
      auto path = g->shortest_path_ports(start, 0);
      cfg.rally_path = path.value_or(std::vector<Port>{});
    }
    return [cfg = std::move(cfg)](sim::Ctx c) {
      return tournament_robot(c, cfg);
    };
  };
  return plan;
}

}  // namespace bdg::core
