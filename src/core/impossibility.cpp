#include "core/impossibility.h"

#include <stdexcept>

#include "graph/generators.h"

namespace bdg::core {
namespace {

/// The concrete deterministic algorithm A of the demonstration: k robots
/// gathered at ring node 0 settle by rank, rank i walking i mod n steps
/// clockwise. With f = 0 node 0 ends up with exactly ceil(k/n) robots.
sim::Proc rank_assign_robot(sim::Ctx ctx, std::uint32_t rank,
                            std::uint32_t n) {
  const std::uint32_t steps = rank % n;
  for (std::uint32_t i = 0; i < steps; ++i)
    co_await ctx.end_round(Port{0});  // port 0 = clockwise on the ring
  // Terminate settled; padding keeps every robot's schedule identical.
  if (steps < n) co_await ctx.sleep_rounds(n - steps);
}

}  // namespace

bool k_dispersion_feasible(std::uint32_t k, std::uint32_t n,
                           std::uint32_t f) {
  const std::uint64_t cap_all = (static_cast<std::uint64_t>(k) + n - 1) / n;
  const std::uint64_t cap_good =
      (static_cast<std::uint64_t>(k) - f + n - 1) / n;
  return cap_all <= cap_good;
}

ImpossibilityDemo demonstrate_impossibility(std::uint32_t n, std::uint32_t k,
                                            std::uint32_t f) {
  if (n < 3 || k < 1 || f >= k)
    throw std::invalid_argument("demonstrate_impossibility: bad parameters");
  const Graph ring = make_oriented_ring(n);

  ImpossibilityDemo demo;
  {
    // Execution 1: everyone honest; the cap ceil(k/n) is met exactly.
    sim::Engine eng(ring);
    for (std::uint32_t rank = 0; rank < k; ++rank) {
      eng.add_robot(rank + 1, sim::Faultiness::kHonest, 0,
                    [rank, n](sim::Ctx c) {
                      return rank_assign_robot(c, rank, n);
                    });
    }
    eng.run(2ULL * n + 8);
    demo.baseline = verify_k_dispersion(eng, k, 0);
  }
  {
    // Execution 2: the ranks assigned to node 0 stay honest; f of the
    // other robots are Byzantine but replay their execution-1 behavior
    // verbatim (the mirror step of the proof).
    sim::Engine eng(ring);
    std::uint32_t byz_marked = 0;
    for (std::uint32_t rank = 0; rank < k; ++rank) {
      const bool settles_at_zero = rank % n == 0;
      const bool byz = !settles_at_zero && byz_marked < f;
      if (byz) ++byz_marked;
      eng.add_robot(rank + 1,
                    byz ? sim::Faultiness::kWeakByzantine
                        : sim::Faultiness::kHonest,
                    0, [rank, n](sim::Ctx c) {
                      return rank_assign_robot(c, rank, n);
                    });
    }
    eng.run(2ULL * n + 8);
    demo.adversarial = verify_k_dispersion(eng, k, f);
  }
  demo.violated = !demo.adversarial.dispersed;
  return demo;
}

}  // namespace bdg::core
