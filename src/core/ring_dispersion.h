#pragma once
// BASELINE: ring-specialized Byzantine dispersion, the algorithm family of
// the paper's predecessors [34, 36] that Section 2 generalizes to
// arbitrary graphs ("we generalize that algorithm to all graphs").
//
// Phase 1: constructive ring Find-Map (explore/ring_map.h), n rounds, no
// communication — tolerant of any number of Byzantine robots.
// Phase 2: Dispersion-Using-Map.
// Total O(n) rounds with up to n-1 weak Byzantine robots, matching the
// time-optimal ring result of [34, 36]; benchmarked against the general
// Theorem 1 machinery in bench_ablation_ring.
#include "core/algorithm_common.h"
#include "gather/gathering.h"

namespace bdg::core {

/// Plan the ring baseline; requires explore::is_ring(g).
[[nodiscard]] AlgorithmPlan plan_ring_dispersion(const Graph& g,
                                                 const gather::CostModel& cost);

}  // namespace bdg::core
