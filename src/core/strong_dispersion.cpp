#include "core/strong_dispersion.h"

#include <algorithm>

#include "core/dispersion_using_map.h"
#include "explore/engine_map.h"

namespace bdg::core {
namespace {

using explore::MapFindConfig;
using explore::MapFindOutcome;

struct StrongPlanConfig {
  std::vector<sim::RobotId> ids;  // sorted; the gathered-set common knowledge
  std::uint32_t n = 0;
  Round t2 = 0;
  Round gather_rounds = 0;
  std::vector<Port> rally_path;
  Round assign_rounds = 0;  ///< fixed length of the assignment phase
};

sim::Proc strong_robot(sim::Ctx ctx, StrongPlanConfig cfg) {
  if (cfg.gather_rounds > 0) {
    gather::GatheringSpec spec{cfg.rally_path, cfg.gather_rounds};
    co_await gather::run_oracle_gathering(ctx, std::move(spec));
  }

  // Phase 1: one group map-finding run, halves by sorted ID, absolute
  // floor(n/4) quorums (paper Section 4).
  const std::size_t half = cfg.ids.size() / 2;
  MapFindConfig mf;
  mf.agents.assign(cfg.ids.begin(), cfg.ids.begin() + half);
  mf.tokens.assign(cfg.ids.begin() + half, cfg.ids.end());
  mf.agent_quorum = std::max<std::uint32_t>(1, cfg.n / 4);
  mf.token_quorum = std::max<std::uint32_t>(1, cfg.n / 4);
  mf.round_budget = cfg.t2;
  mf.n = cfg.n;
  const bool is_agent =
      std::binary_search(mf.agents.begin(), mf.agents.end(), ctx.self());
  // co_await must not sit inside a conditional expression (GCC frees the
  // temporary task frame early); use plain statements.
  MapFindOutcome out;
  if (is_agent) {
    out = co_await explore::run_map_agent(ctx, mf);
  } else {
    out = co_await explore::run_map_token(ctx, mf);
  }
  const auto map =
      out.code.has_value() ? decode_map(*out.code, cfg.n) : std::nullopt;
  if (!map.has_value()) co_return;

  // Phase 2: deterministic assignment, no communication. The robot whose
  // rank in the agreed ID order is i settles at map node v(i) (the map's
  // construction order is canonical and identical for every honest robot).
  const auto rank = static_cast<std::uint32_t>(
      std::lower_bound(cfg.ids.begin(), cfg.ids.end(), ctx.self()) -
      cfg.ids.begin());
  std::uint64_t used = 0;
  if (rank < map->n()) {
    const auto path = map->shortest_path_ports(0, rank);
    if (path.has_value()) {
      for (const Port p : *path) {
        co_await ctx.end_round(p);
        ++used;
      }
    }
  }
  if (Round(used) < cfg.assign_rounds)
    co_await ctx.sleep_rounds(cfg.assign_rounds - used);
}

AlgorithmPlan plan_strong(const Graph& g, std::vector<sim::RobotId> ids,
                          Round gather_rounds,
                          const gather::CostModel& cost) {
  (void)cost;
  std::sort(ids.begin(), ids.end());
  const auto n = static_cast<std::uint32_t>(g.n());
  const Round t2 = explore::default_map_window(n);
  const Round assign = Round(n) + 8;

  AlgorithmPlan plan;
  plan.total_rounds = gather_rounds + t2 + assign + 8;
  plan.byz_wake_round = gather_rounds;
  plan.honest = [=, g = &g](sim::RobotId, NodeId start) -> sim::ProgramFactory {
    StrongPlanConfig cfg;
    cfg.ids = ids;
    cfg.n = n;
    cfg.t2 = t2;
    cfg.gather_rounds = gather_rounds;
    cfg.assign_rounds = assign;
    if (gather_rounds > 0) {
      auto path = g->shortest_path_ports(start, 0);
      cfg.rally_path = path.value_or(std::vector<Port>{});
    }
    return [cfg = std::move(cfg)](sim::Ctx c) { return strong_robot(c, cfg); };
  };
  return plan;
}

}  // namespace

AlgorithmPlan plan_strong_gathered_dispersion(const Graph& g,
                                              std::vector<sim::RobotId> ids,
                                              const gather::CostModel& cost) {
  return plan_strong(g, std::move(ids), 0, cost);
}

AlgorithmPlan plan_strong_arbitrary_dispersion(const Graph& g,
                                               std::vector<sim::RobotId> ids,
                                               std::uint32_t f,
                                               const gather::CostModel& cost) {
  const auto n = static_cast<std::uint32_t>(g.n());
  const std::uint32_t lambda =
      gather::CostModel::id_bits(ids.empty() ? 1 : *std::max_element(
                                                       ids.begin(), ids.end()));
  const Round gather_rounds = std::max<Round>(
      cost.rounds(gather::GatherKind::kStrongExp, n, f, lambda), 2 * g.n());
  return plan_strong(g, std::move(ids), gather_rounds, cost);
}

}  // namespace bdg::core
