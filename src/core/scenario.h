#pragma once
// Scenario harness: one call builds the robots (IDs, placements, Byzantine
// assignment and strategies), plans the chosen algorithm, runs the engine,
// and verifies Definition 1. Used by integration tests, benchmarks and
// examples alike.
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/algorithm_common.h"
#include "core/byzantine.h"
#include "core/verifier.h"
#include "gather/gathering.h"
#include "graph/graph.h"

namespace bdg::core {

enum class Algorithm {
  kQuotient,             ///< Theorem 1 (Table 1 row 1)
  kTournamentArbitrary,  ///< Theorem 2 (row 2)
  kSqrtArbitrary,        ///< Theorem 5 (row 3)
  kTournamentGathered,   ///< Theorem 3 (row 4)
  kThreeGroupGathered,   ///< Theorem 4 (row 5)
  kStrongArbitrary,      ///< Theorem 7 (row 6)
  kStrongGathered,       ///< Theorem 6 (row 7)
  /// Extension: REAL (fully simulated) bit-epoch gathering + Theorem 4
  /// phases; crash faults only. See core/crash_dispersion.h.
  kCrashRealGathering,
  /// Baseline: ring-specialized O(n) algorithm of the paper's predecessors
  /// [34, 36]; requires the graph to be a ring. See core/ring_dispersion.h.
  kRingBaseline,
};

[[nodiscard]] std::string to_string(Algorithm a);

/// Inverse of to_string(Algorithm); nullopt for unknown names. Used by the
/// sweep checkpoint reader to reconstruct points from JSON-lines.
[[nodiscard]] std::optional<Algorithm> algorithm_from_string(
    const std::string& name);

/// Claimed weak-Byzantine tolerance of each algorithm (Table 1), given n.
[[nodiscard]] std::uint32_t max_tolerated_f(Algorithm a, std::uint32_t n);

/// Generalized tolerance for the k-robot setting (Theorem 8): k robots on
/// an n-node graph run in ceil(k/n) waves of at most n robots each (robots
/// striped across waves by ID rank), so the binding instance is the
/// smallest wave and — with byz_smallest_ids striping — each wave absorbs
/// at most ceil(f / waves) Byzantine robots. k == n reduces to
/// max_tolerated_f(a, n). Also capped by Theorem 8 feasibility
/// (ceil(k/n) == ceil((k-f)/n)), by the multi-wave settlement capacity
/// f <= (ceil(k/n)*n - k) / (ceil(k/n) - 1) (a node-denying adversary
/// costs every wave a slot), and by f <= k - 1.
[[nodiscard]] std::uint32_t max_tolerated_f_k(Algorithm a, std::uint32_t n,
                                              std::uint32_t k);

/// Whether the algorithm assumes an initially gathered configuration.
[[nodiscard]] bool starts_gathered(Algorithm a);

/// Whether the algorithm tolerates strong Byzantine robots.
[[nodiscard]] bool handles_strong(Algorithm a);

struct ScenarioConfig {
  Algorithm algorithm = Algorithm::kStrongGathered;
  /// Number of robots k (Theorem 8's generalized setting); 0 = one robot
  /// per node (k = n), the paper's Table 1 setting. k < n runs a single
  /// undersubscribed instance; k > n runs ceil(k/n) waves of at most n
  /// robots each, scheduled back to back (robots striped across waves by
  /// ID rank), which meets the generalized Definition 1 cap of
  /// ceil((k - f)/n) per node exactly when Theorem 8 says dispersion is
  /// feasible.
  std::uint32_t num_robots = 0;
  std::uint32_t num_byzantine = 0;
  ByzStrategy strategy = ByzStrategy::kRandomWalker;
  /// Optional heterogeneous adversary: when non-empty, the i-th Byzantine
  /// robot runs strategies[i % strategies.size()] instead of `strategy`.
  std::vector<ByzStrategy> strategies;
  /// Give the f smallest IDs to Byzantine robots (worst case for the
  /// rank-preference rules) instead of a random subset.
  bool byz_smallest_ids = true;
  /// Make the Byzantine robots strong (forced on for the strong
  /// algorithms, which are the only ones claiming that tolerance).
  bool strong_byzantine = false;
  std::uint64_t seed = 1;
  gather::CostModel cost{/*scaled=*/true};
  /// Batched pairing windows for the tournament algorithms (map-cache,
  /// verify-only walk, early window close — see
  /// plan_tournament_dispersion). On by default; the conformance tests
  /// turn it off to pin that verdicts and charged round totals are
  /// bit-identical to the original rebuild-every-window protocol.
  bool batched_pairing = true;
  /// Run Byzantine robots through the compiled range-effect interpreter
  /// (make_compiled_byzantine_program) instead of the per-round strategy
  /// coroutines, so adversarial points fast-forward honest sleep windows
  /// like f=0 points do. Observable behavior is bit-identical (verdicts,
  /// rounds, moves, messages, derived seeds); only simulated_rounds /
  /// resumes / wall clock change. The conformance tests turn it off to pin
  /// exactly that. Ignored (coroutine fallback) when an observer is
  /// attached: per-round traces need the adversary live in every round.
  bool compiled_adversary = true;
  /// Optional engine instrumentation (see sim::TraceRecorder); not owned.
  sim::Observer* observer = nullptr;
};

struct ScenarioResult {
  VerifyResult verify;
  sim::RunStats stats;
  Round planned_rounds = 0;  ///< the plan's termination bound
  /// The planned bound overflowed 128-bit round accounting. The engine was
  /// never run: verify reports a loud failure and sweeps turn this into a
  /// structured skip (mirroring the Theorem 8 infeasibility machinery).
  bool saturated = false;
};

/// Distinct robot IDs from [1, max(k, n)^2] (paper: IDs from [1, n^c],
/// c > 1), in increasing order — the exact draw run_scenario performs
/// first with Rng(seed). Exposed so oracle tests can reconstruct a
/// scenario's plan bounds (which depend on the drawn IDs through
/// |Lambda|) without re-running it.
[[nodiscard]] std::vector<sim::RobotId> draw_robot_ids(std::uint32_t k,
                                                       std::uint32_t n,
                                                       std::uint64_t seed);

/// Build, run and verify one scenario on `g` (with n = g.n() robots).
[[nodiscard]] ScenarioResult run_scenario(const Graph& g,
                                          const ScenarioConfig& cfg);

}  // namespace bdg::core
