#pragma once
// Theorems 2 and 3: Byzantine dispersion tolerating up to floor(n/2)-1
// weak Byzantine robots on ANY graph.
//
// Phase 1 (arbitrary start only): gather via [24] (oracle-charged,
// O(n^4 |Lambda| X(n)) rounds — the dominating term of Theorem 2).
// Phase 2: every robot pairs up with every other robot across O(n)
// fixed-length windows; in each pairing both robots run the map-finding-
// with-movable-token subroutine once as the agent and once as the token.
// A robot keeps only the maps it built itself as the agent: with
// f <= floor(n/2)-1, its good pairings (honest partner) outnumber its bad
// ones, so the majority map is the true map of G.
// Phase 3: Dispersion-Using-Map from the rally node.
#include "core/algorithm_common.h"
#include "gather/gathering.h"

namespace bdg::core {

/// Plans Theorem 2 (gathered == false) or Theorem 3 (gathered == true).
/// `ids` = the IDs of all n robots (the gathered-set common knowledge the
/// paper grants after Phase 1); `f` only feeds the charged gathering bound.
[[nodiscard]] AlgorithmPlan plan_tournament_dispersion(
    const Graph& g, std::vector<sim::RobotId> ids, bool gathered,
    std::uint32_t f, const gather::CostModel& cost);

}  // namespace bdg::core
