#pragma once
// Theorems 2 and 3: Byzantine dispersion tolerating up to floor(n/2)-1
// weak Byzantine robots on ANY graph.
//
// Phase 1 (arbitrary start only): gather via [24] (oracle-charged,
// O(n^4 |Lambda| X(n)) rounds — the dominating term of Theorem 2).
// Phase 2: every robot pairs up with every other robot across O(n)
// fixed-length windows; in each pairing both robots run the map-finding-
// with-movable-token subroutine once as the agent and once as the token.
// A robot keeps only the maps it built itself as the agent: with
// f <= floor(n/2)-1, its good pairings (honest partner) outnumber its bad
// ones, so the majority map is the true map of G.
// Phase 3: Dispersion-Using-Map from the rally node.
#include "core/algorithm_common.h"
#include "gather/gathering.h"

namespace bdg::core {

/// Plans Theorem 2 (gathered == false) or Theorem 3 (gathered == true).
/// `ids` = the IDs of all n robots (the gathered-set common knowledge the
/// paper grants after Phase 1); `f` feeds the charged gathering bound and
/// the vote thresholds (majority fault budget, batching confirmation).
/// Throws std::invalid_argument if any id is 0 — the pairing machinery
/// reserves 0 as its dummy-bye/idle marker, so a real robot with ID 0
/// would silently sleep every window and corrupt the schedule.
///
/// `batched` (default, the production path) caches map-finding work
/// across pairing windows: a robot full-builds until one code has been
/// self-built in f+1 distinct windows (at most f partners can lie, and
/// every partner appears in exactly one window, so that code is the true
/// map); it then runs one verify-only walk re-checking the cache against
/// the physical graph (mismatch => full rebuild, so even a beyond-budget
/// adversary can only burn windows, never poison the vote), after which
/// every remaining window publishes immediately and sleeps — windows
/// where both partners are confirmed fast-forward whole. Charged bounds
/// (plan totals, window lengths, phase structure) are bit-identical to
/// the unbatched path; only active/simulated rounds, moves and messages
/// drop. `batched = false` keeps the original rebuild-every-window
/// protocol (conformance tests run both and pin verdicts and round totals
/// equal).
[[nodiscard]] AlgorithmPlan plan_tournament_dispersion(
    const Graph& g, std::vector<sim::RobotId> ids, bool gathered,
    std::uint32_t f, const gather::CostModel& cost, bool batched = true);

}  // namespace bdg::core
