#include "core/verifier.h"

#include <algorithm>

namespace bdg::core {
namespace {

VerifyResult check(const sim::Engine& engine, std::uint32_t per_node_cap) {
  VerifyResult res;
  std::vector<std::uint32_t> load(engine.graph().n(), 0);
  bool all_done = true;
  for (std::size_t i = 0; i < engine.num_robots(); ++i) {
    if (engine.robot_faultiness(i) != sim::Faultiness::kHonest) continue;
    ++res.honest_count;
    ++load[engine.robot_position(i)];
    if (!engine.robot_done(i)) {
      all_done = false;
      res.detail += "robot " + std::to_string(engine.robot_id(i)) +
                    " did not terminate; ";
    }
  }
  res.all_honest_done = all_done;
  res.worst_node_load =
      load.empty() ? 0 : *std::max_element(load.begin(), load.end());
  res.dispersed = res.worst_node_load <= per_node_cap;
  if (!res.dispersed) {
    for (NodeId v = 0; v < load.size(); ++v)
      if (load[v] > per_node_cap)
        res.detail += "node " + std::to_string(v) + " holds " +
                      std::to_string(load[v]) + " honest robots; ";
  }
  return res;
}

}  // namespace

VerifyResult verify_dispersion(const sim::Engine& engine) {
  return check(engine, 1);
}

VerifyResult verify_k_dispersion(const sim::Engine& engine, std::uint32_t k,
                                 std::uint32_t f) {
  const auto n = static_cast<std::uint32_t>(engine.graph().n());
  const std::uint32_t cap = (k - f + n - 1) / n;  // ceil((k - f) / n)
  return check(engine, cap);
}

VerifyResult verify_round_bound(const Round& planned) {
  VerifyResult res;
  if (!planned.is_saturated()) {
    // Nothing ran yet; the caller proceeds to the engine and the real
    // post-run checks. Report a vacuously passing result.
    res.dispersed = true;
    res.all_honest_done = true;
    return res;
  }
  res.dispersed = false;
  res.all_honest_done = false;
  res.detail =
      "planned round bound saturated 128-bit accounting (exceeds 2^128-1); "
      "refusing to run the scenario";
  return res;
}

}  // namespace bdg::core
