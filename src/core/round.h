#pragma once
// core::Round — saturating unsigned 128-bit round count.
//
// The paper's charged round bounds for the exponential rows (row 2's
// weak-gathering charge under the theory cost model, row 6's strong
// exponential gathering) overflow 64-bit arithmetic long before the n
// values the sweep grids want to reach. Every layer that carries a round
// count — bound calculators, engine wake scheduling, sweep reports,
// checkpoints — uses this type instead of std::uint64_t, so overflow is
// an explicit *reported* state (is_saturated()), never silent wraparound
// or an ad-hoc cap.
//
// Semantics:
//  * magnitude is an unsigned 128-bit integer; the all-ones value 2^128-1
//    is the saturation sentinel (representable exact range [0, 2^128-2]);
//  * +, *, << and exp2 saturate to the sentinel on overflow; saturation
//    is sticky through them (except multiplication by zero, which is 0);
//  * operator- is a monus (clamps at 0); subtracting from a saturated
//    value stays saturated ("at least that much is still left");
//  * to_string/from_string are an exact decimal round-trip, used by the
//    run/report writers so 128-bit rounds survive CSV/JSON/checkpoint
//    serialization byte-identically.
//
// Header-only on purpose: the sim layer sits below core in the library
// graph (util <- graph <- sim <- {explore, gather} <- core <- run) but
// keys its wake queue on Round; a dependency-free header is usable from
// every layer without linking bdg_core.
#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>

#ifndef __SIZEOF_INT128__
#error "core::Round requires compiler __int128 support (GCC/Clang, 64-bit)"
#endif

namespace bdg::core {

class Round {
 public:
  using u128 = unsigned __int128;

  constexpr Round() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): literals must stay ergonomic
  constexpr Round(std::uint64_t v) : v_(v) {}

  /// The saturation sentinel (2^128 - 1).
  [[nodiscard]] static constexpr Round saturated() { return from_raw(~u128{0}); }

  /// 2^p, saturating for p >= 128.
  [[nodiscard]] static constexpr Round exp2(std::uint32_t p) {
    if (p >= 128) return saturated();
    return from_raw(u128{1} << p);
  }

  [[nodiscard]] constexpr bool is_saturated() const { return v_ == ~u128{0}; }
  [[nodiscard]] constexpr bool fits_u64() const {
    return v_ <= u128{UINT64_MAX};
  }
  /// Low 64 bits; meaningful only when fits_u64().
  [[nodiscard]] constexpr std::uint64_t low_u64() const {
    return static_cast<std::uint64_t>(v_);
  }
  [[nodiscard]] double to_double() const {
    return static_cast<double>(v_);  // __int128 -> double is exact up to 2^53
  }
  explicit operator double() const { return to_double(); }
  [[nodiscard]] constexpr u128 raw() const { return v_; }

  // --- saturating arithmetic ----------------------------------------------
  friend constexpr Round operator+(Round a, Round b) {
    const u128 sum = a.v_ + b.v_;
    if (sum < a.v_) return saturated();
    return from_raw(sum);
  }
  /// Monus: clamps at 0. A saturated minuend stays saturated (at least
  /// that much remains).
  friend constexpr Round operator-(Round a, Round b) {
    if (a.is_saturated()) return a;
    if (b.v_ >= a.v_) return from_raw(0);
    return from_raw(a.v_ - b.v_);
  }
  friend constexpr Round operator*(Round a, Round b) {
    if (a.v_ == 0 || b.v_ == 0) return from_raw(0);
    if (a.is_saturated() || b.is_saturated()) return saturated();
    if (a.v_ > ~u128{0} / b.v_) return saturated();
    return from_raw(a.v_ * b.v_);
  }
  friend constexpr Round operator<<(Round a, std::uint32_t shift) {
    if (a.v_ == 0) return a;
    if (shift >= 128 || a.v_ > (~u128{0} >> shift)) return saturated();
    return from_raw(a.v_ << shift);
  }
  constexpr Round& operator+=(Round b) { return *this = *this + b; }
  constexpr Round& operator-=(Round b) { return *this = *this - b; }
  constexpr Round& operator*=(Round b) { return *this = *this * b; }

  // --- comparisons ----------------------------------------------------------
  friend constexpr bool operator==(Round a, Round b) { return a.v_ == b.v_; }
  friend constexpr bool operator!=(Round a, Round b) { return a.v_ != b.v_; }
  friend constexpr bool operator<(Round a, Round b) { return a.v_ < b.v_; }
  friend constexpr bool operator<=(Round a, Round b) { return a.v_ <= b.v_; }
  friend constexpr bool operator>(Round a, Round b) { return a.v_ > b.v_; }
  friend constexpr bool operator>=(Round a, Round b) { return a.v_ >= b.v_; }

  // --- exact decimal serialization ----------------------------------------
  [[nodiscard]] std::string to_string() const {
    if (v_ == 0) return "0";
    char buf[40];  // 2^128-1 has 39 digits
    char* p = buf + sizeof buf;
    for (u128 v = v_; v != 0; v /= 10)
      *--p = static_cast<char>('0' + static_cast<unsigned>(v % 10));
    return std::string(p, buf + sizeof buf);
  }

  /// Parse an exact decimal magnitude; nullopt on empty input, non-digit
  /// characters, or a value past 2^128-1 (an overflowing text is foreign
  /// data, not a saturated round).
  [[nodiscard]] static std::optional<Round> from_string(std::string_view s) {
    if (s.empty() || s.size() > 39) return std::nullopt;
    u128 v = 0;
    for (const char c : s) {
      if (c < '0' || c > '9') return std::nullopt;
      const auto digit = static_cast<unsigned>(c - '0');
      if (v > (~u128{0} - digit) / 10) return std::nullopt;
      v = v * 10 + digit;
    }
    return from_raw(v);
  }

  friend std::ostream& operator<<(std::ostream& os, Round r) {
    return os << r.to_string();
  }

 private:
  [[nodiscard]] static constexpr Round from_raw(u128 v) {
    Round r;
    r.v_ = v;
    return r;
  }
  u128 v_ = 0;
};

}  // namespace bdg::core
