#include "core/byzantine.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/protocol_msgs.h"
#include "explore/engine_map.h"
#include "util/smallvec.h"

namespace bdg::core {

Round ChargeGate::pending(Round now) {
  while (next < sched.charged.size() && now >= sched.charged[next].second)
    ++next;
  if (next < sched.charged.size() && now >= sched.charged[next].first)
    return sched.charged[next].second - now;
  return 0;
}

Round ChargeGate::until_next(Round now) const {
  if (next >= sched.charged.size()) return Round::saturated();
  return sched.charged[next].first - now;
}

namespace {

using sim::Ctx;
using sim::Proc;

std::optional<Port> random_port(Ctx& ctx, Rng& rng) {
  if (ctx.degree() == 0) return std::nullopt;
  return static_cast<Port>(rng.below(ctx.degree()));
}

/// The schedule contract every program (coroutine or compiled) relies on:
/// windows nonempty, sorted, disjoint, and not before the wake round. A
/// malformed schedule would silently skew sleep accounting (ChargeGate's
/// >= advance happens to swallow empty [a, a) windows, for instance), so
/// reject it loudly at construction.
void validate_schedule(const ByzSchedule& sched) {
  Round prev_end = sched.wake;
  for (const auto& [begin, end] : sched.charged) {
    if (end <= begin)
      throw std::invalid_argument(
          "ByzSchedule: charged window must be nonempty [begin, end)");
    if (begin < prev_end)
      throw std::invalid_argument(
          "ByzSchedule: charged windows must be sorted, disjoint and not "
          "before the wake round");
    prev_end = end;
  }
}

// Every strategy loop starts a round with this: sleep out the initial
// charged prefix and, later, every charged window of subsequent waves.
// Single-wave schedules have no windows, so behavior (and RNG draws) are
// bit-identical to the pre-schedule code there.
#define BDG_BYZ_SKIP_CHARGED(gate, ctx)                                 \
  for (Round d_ = (gate).pending((ctx).round()); d_ != Round(0);        \
       d_ = (gate).pending((ctx).round()))                              \
  co_await (ctx).sleep_rounds(d_)

Proc crash_program(Ctx ctx) {
  (void)ctx;
  co_return;
}

Proc random_walker(Ctx ctx, ByzSchedule sched, Rng rng) {
  ChargeGate gate{std::move(sched)};
  if (gate.sched.wake != 0) co_await ctx.sleep_rounds(gate.sched.wake);
  for (;;) {
    BDG_BYZ_SKIP_CHARGED(gate, ctx);
    ctx.broadcast(kMsgStatus, {kStateToBeSettled});
    co_await ctx.end_round(random_port(ctx, rng));
  }
}

Proc squatter(Ctx ctx, ByzSchedule sched) {
  ChargeGate gate{std::move(sched)};
  if (gate.sched.wake != 0) co_await ctx.sleep_rounds(gate.sched.wake);
  for (;;) {
    BDG_BYZ_SKIP_CHARGED(gate, ctx);
    ctx.broadcast(kMsgStatus, {kStateSettled});
    co_await ctx.end_round(std::nullopt);
  }
}

Proc fake_settler(Ctx ctx, ByzSchedule sched, Rng rng) {
  ChargeGate gate{std::move(sched)};
  if (gate.sched.wake != 0) co_await ctx.sleep_rounds(gate.sched.wake);
  const std::uint64_t squat_len = 2 + rng.below(2 * ctx.n());
  for (;;) {
    // Claim to be settled here for a while...
    for (std::uint64_t i = 0; i < squat_len; ++i) {
      BDG_BYZ_SKIP_CHARGED(gate, ctx);
      ctx.broadcast(kMsgStatus, {kStateSettled});
      co_await ctx.end_round(std::nullopt);
    }
    // ...then sneak a few hops away and claim again (classic A_r bait).
    const std::uint64_t hops = 1 + rng.below(3);
    for (std::uint64_t i = 0; i < hops; ++i) {
      BDG_BYZ_SKIP_CHARGED(gate, ctx);
      co_await ctx.end_round(random_port(ctx, rng));
    }
  }
}

Proc silent_settler(Ctx ctx, ByzSchedule sched) {
  ChargeGate gate{std::move(sched)};
  if (gate.sched.wake != 0) co_await ctx.sleep_rounds(gate.sched.wake);
  // Claim Settled briefly, then vanish from the airwaves: visitors that
  // recorded us must blacklist us for the missing beacon (paper step 4).
  for (int i = 0; i < 3; ++i) {
    BDG_BYZ_SKIP_CHARGED(gate, ctx);
    ctx.broadcast(kMsgStatus, {kStateSettled});
    co_await ctx.end_round(std::nullopt);
  }
  co_return;
}

Proc intent_spammer(Ctx ctx, ByzSchedule sched, Rng rng) {
  ChargeGate gate{std::move(sched)};
  if (gate.sched.wake != 0) co_await ctx.sleep_rounds(gate.sched.wake);
  for (;;) {
    BDG_BYZ_SKIP_CHARGED(gate, ctx);
    // Announce settling without ever staying put; forces honest robots to
    // record us and exercise the relocation blacklist rule.
    ctx.broadcast(kMsgStatus, {kStateToBeSettled});
    ctx.broadcast(kMsgIntent);
    ctx.broadcast(kMsgSettled);
    co_await ctx.end_round(random_port(ctx, rng));
  }
}

Proc map_liar(Ctx ctx, ByzSchedule sched, Rng rng) {
  ChargeGate gate{std::move(sched)};
  if (gate.sched.wake != 0) co_await ctx.sleep_rounds(gate.sched.wake);
  for (;;) {
    BDG_BYZ_SKIP_CHARGED(gate, ctx);
    // Lie on every map-finding channel at once: fake token presence, fake
    // instructions, garbage map codes.
    ctx.broadcast(explore::kMsgTokenHere);
    ctx.broadcast(explore::kMsgInstr,
                  {static_cast<std::int64_t>(explore::MapOp::kTMove),
                   static_cast<std::int64_t>(rng.below(4))});
    ctx.broadcast(explore::kMsgMapCode, {1, 0});
    co_await ctx.next_subround();
    ctx.broadcast(explore::kMsgTokenHere);
    // The move draw is hoisted out of the co_await argument: GCC 12
    // evaluates BOTH arms of a side-effecting conditional placed inside a
    // co_await call argument (observed: random_port's draw consumed even
    // when the chance failed, with arm order varying across builds), which
    // silently changed the draw sequence between binaries.
    std::optional<Port> port;
    if (rng.chance(1, 2)) port = random_port(ctx, rng);
    co_await ctx.end_round(port);
  }
}

// The strong-robot requirement is enforced by the program factory BEFORE
// this coroutine first runs (a misconfigured weak spoofer must abort at
// t=0, not after a possibly astronomically long charged prefix).
Proc spoofer(Ctx ctx, ByzSchedule sched, std::vector<sim::RobotId> peers,
             Rng rng) {
  ChargeGate gate{std::move(sched)};
  if (gate.sched.wake != 0) co_await ctx.sleep_rounds(gate.sched.wake);
  for (;;) {
    BDG_BYZ_SKIP_CHARGED(gate, ctx);
    // Forge votes under several peers' identities on all channels.
    for (int i = 0; i < 3 && !peers.empty(); ++i) {
      const sim::RobotId victim = peers[rng.below(peers.size())];
      ctx.spoof_broadcast(victim, kMsgStatus, {kStateSettled});
      ctx.spoof_broadcast(victim, explore::kMsgTokenHere);
      ctx.spoof_broadcast(victim, explore::kMsgInstr,
                          {static_cast<std::int64_t>(explore::MapOp::kTMove),
                           static_cast<std::int64_t>(rng.below(4))});
      ctx.spoof_broadcast(victim, explore::kMsgMapCode, {1, 0});
      ctx.spoof_broadcast(victim, kMsgSettled);
    }
    co_await ctx.next_subround();
    for (int i = 0; i < 2 && !peers.empty(); ++i) {
      const sim::RobotId victim = peers[rng.below(peers.size())];
      ctx.spoof_broadcast(victim, explore::kMsgTokenHere);
    }
    // Hoisted for the same GCC 12 both-arms miscompile as map_liar above.
    std::optional<Port> port;
    if (rng.chance(1, 2)) port = random_port(ctx, rng);
    co_await ctx.end_round(port);
  }
}

#undef BDG_BYZ_SKIP_CHARGED

// ---------------------------------------------------------------------------
// Compiled-strategy interpreter
// ---------------------------------------------------------------------------

/// Phase length at (re-)entry; the draw (if any) consumes exactly the
/// rng.below the coroutine strategy consumed at the same point.
std::uint64_t draw_phase_len(const CompiledStrategy::Phase& p, std::uint32_t n,
                             Rng& rng) {
  const std::uint64_t bound = p.n_scaled ? p.bound * n : p.bound;
  // Draw hoisted out of the conditional expression (detlint unsequenced-rng,
  // the PR 6 class); same draw iff bound != 0, so the sequence is unchanged.
  std::uint64_t jitter = 0;
  if (bound != 0) jitter = rng.below(bound);
  return p.base + jitter;
}

/// Payload scratch reused across every broadcast of one compiled robot:
/// the interpreter fills it in place and hands the engine a span, so the
/// live path performs no per-message allocation (the engine copies the
/// words once into a pooled block).
using PayloadBuf = util::SmallVec<std::int64_t, 8>;

void fill_payload(const std::vector<CompiledStrategy::PayloadElem>& elems,
                  Rng& rng, PayloadBuf& out) {
  out.clear();
  // Draw hoisted out of the conditional expression (detlint unsequenced-rng);
  // one below(4) per draw_below4 element, in element order, as before.
  for (const auto& e : elems) {
    std::int64_t word = e.literal;
    if (e.draw_below4) word = static_cast<std::int64_t>(rng.below(4));
    out.push_back(word);
  }
}

/// Replay-side twin of make_payload: consume the draws, skip the bytes.
void consume_payload_draws(
    const std::vector<CompiledStrategy::PayloadElem>& elems, Rng& rng) {
  for (const auto& e : elems)
    if (e.draw_below4) (void)rng.below(4);
}

std::optional<Port> draw_move(CompiledStrategy::MoveRule rule, Ctx& ctx,
                              Rng& rng) {
  switch (rule) {
    case CompiledStrategy::MoveRule::kStay:
      return std::nullopt;
    case CompiledStrategy::MoveRule::kRandomPort:
      return random_port(ctx, rng);
    case CompiledStrategy::MoveRule::kChancePort:
      // Draw hoisted out of the conditional expression (detlint
      // unsequenced-rng); chance() then (iff true) random_port(), as before.
      if (rng.chance(1, 2)) return random_port(ctx, rng);
      return std::nullopt;
  }
  return std::nullopt;
}

/// The one interpreter behind every compiled strategy. Live rounds and
/// replayed (fast-forwarded) rounds walk the SAME op list, so the RNG
/// draw order, message contents/order, move timing and charged-window
/// sleeps are bit-identical to the coroutine strategies by construction —
/// only the execution shape differs: between rounds the robot parks via
/// end_round_ambient instead of holding the engine awake.
Proc run_compiled(Ctx ctx, CompiledStrategy cs, ByzSchedule sched,
                  std::vector<sim::RobotId> peers, Rng rng) {
  using LenRule = CompiledStrategy::LenRule;
  using OpKind = CompiledStrategy::OpKind;
  ChargeGate gate{std::move(sched)};
  if (gate.sched.wake != 0) co_await ctx.sleep_rounds(gate.sched.wake);

  // kDrawOnce lengths are drawn exactly where the coroutines draw them:
  // right after the wake sleep, before the first active round.
  std::vector<std::uint64_t> once_len(cs.phases.size(), 0);
  for (std::size_t i = 0; i < cs.phases.size(); ++i)
    if (cs.phases[i].len == LenRule::kDrawOnce)
      once_len[i] = draw_phase_len(cs.phases[i], ctx.n(), rng);

  // Broadcast payloads have a tiny value space: literal-only payloads are
  // round-invariant, and a payload with ONE draw_below4 element takes just
  // 4 values. Pool every such variant ONCE and re-broadcast the shared
  // block, so each send is a refcount bump instead of a block build and
  // the receiver-side content fingerprint is memoized for the strategy's
  // whole lifetime. Indexed [phase][op]: 1 block = literal-only, 4 blocks
  // = single-draw (indexed by the drawn value), empty = multi-draw ops,
  // which keep the fill-and-copy path. The RNG stream is bit-identical:
  // the live path draws below(4) exactly where fill_payload would.
  std::vector<std::vector<util::SmallVec<util::PayloadRef, 4>>>
      shared_payloads(cs.phases.size());
  // Replay digest per phase: a phase with no kDrawVictim op replays each
  // round as `draw4` below(4) draws + one move draw + one ambient step
  // (spoofs never fire without a victim), so the per-round op walk can
  // collapse to a tight loop. Draw order is preserved exactly — payload
  // draws are all below(4) and happen in op order either way.
  struct ReplayDigest {
    bool simple = false;
    std::uint32_t draw4 = 0;
    std::uint64_t emitted = 0;
  };
  std::vector<ReplayDigest> replay_digest(cs.phases.size());
  {
    PayloadBuf lit;
    for (std::size_t pi = 0; pi < cs.phases.size(); ++pi) {
      const auto& ops = cs.phases[pi].ops;
      shared_payloads[pi].resize(ops.size());
      ReplayDigest& rd = replay_digest[pi];
      rd.simple = true;
      for (std::size_t oi = 0; oi < ops.size(); ++oi) {
        const CompiledStrategy::Op& op = ops[oi];
        if (op.kind == OpKind::kDrawVictim) rd.simple = false;
        if (op.kind != OpKind::kBroadcast && op.kind != OpKind::kSpoofBroadcast)
          continue;
        const std::size_t draws = static_cast<std::size_t>(
            std::count_if(op.payload.begin(), op.payload.end(),
                          [](const auto& e) { return e.draw_below4; }));
        if (op.kind == OpKind::kBroadcast) {
          rd.draw4 += static_cast<std::uint32_t>(draws);
          ++rd.emitted;
        }
        if (draws > 1) continue;
        for (std::int64_t v = 0; v < (draws == 0 ? 1 : 4); ++v) {
          lit.clear();
          for (const auto& e : op.payload)
            lit.push_back(e.draw_below4 ? v : e.literal);
          shared_payloads[pi][oi].push_back(
              ctx.make_payload({lit.data(), lit.size()}));
        }
      }
    }
  }

  std::size_t phase = 0;
  std::uint64_t left = 0;  // rounds left in the phase (kForever: unused)
  bool finished = cs.phases.empty();

  // Enter phases from `phase` on until one grants a nonzero budget.
  // kDrawEachEntry draws here — the same point in the RNG sequence as the
  // coroutine, since no draw can intervene between a phase's final round
  // and the next phase's entry.
  const auto enter_phase = [&](bool advance) {
    if (finished) return;
    if (advance) ++phase;
    for (std::size_t tries = 0; tries <= cs.phases.size(); ++tries) {
      if (phase >= cs.phases.size()) {
        if (!cs.loop) {
          finished = true;
          return;
        }
        phase = 0;
      }
      const CompiledStrategy::Phase& p = cs.phases[phase];
      switch (p.len) {
        case LenRule::kForever:
          left = 0;
          return;
        case LenRule::kFixed:
          left = p.base;
          break;
        case LenRule::kDrawOnce:
          left = once_len[phase];
          break;
        case LenRule::kDrawEachEntry:
          left = draw_phase_len(p, ctx.n(), rng);
          break;
      }
      if (left != 0) return;
      ++phase;  // zero-length phase: skip
    }
    finished = true;  // every phase empty: nothing to ever do
  };
  enter_phase(/*advance=*/false);

  Round now = ctx.round();  // next round this robot owes an action for
  for (;;) {
    if (finished) co_return;
    if (now < ctx.round()) {
      // ----- replay: `now` was fast-forwarded past while parked -------
      if (const Round d = gate.pending(now); d != Round(0)) {
        // The per-round path slept out this charged stretch: no draws,
        // no messages, no moves. Jump the cursor.
        const Round horizon = ctx.round() - now;
        now += d < horizon ? d : horizon;
        continue;
      }
      const CompiledStrategy::Phase& p = cs.phases[phase];
      if (p.bulk_ok) {
        // Draw-free stationary phase: the stretch is ONE range effect —
        // bounded by the phase budget and the next charged window, and
        // chunked so the message product stays in 64 bits while the
        // resume budget still bounds pathological gaps.
        Round span = ctx.round() - now;
        if (const Round c = gate.until_next(now); c < span) span = c;
        if (p.len != LenRule::kForever && Round(left) < span)
          span = Round(left);
        const std::uint64_t steps =
            span.fits_u64() ? span.low_u64()
                            : std::numeric_limits<std::uint64_t>::max();
        const std::uint64_t chunk = std::min<std::uint64_t>(steps, 1ULL << 32);
        ctx.ambient_round(std::nullopt, chunk * p.messages_per_round);
        now += Round(chunk);
        if (p.len != LenRule::kForever && (left -= chunk) == 0)
          enter_phase(/*advance=*/true);
        continue;
      }
      if (const ReplayDigest& rd = replay_digest[phase]; rd.simple) {
        // Victim-free phase: replay a whole uncharged stretch in one tight
        // loop (same draws and ambient steps as the op walk, minus the
        // per-round dispatch and gate checks). Bounded like the bulk path:
        // by the gap, the next charged window and the phase budget.
        Round span = ctx.round() - now;
        if (const Round c = gate.until_next(now); c < span) span = c;
        if (p.len != LenRule::kForever && Round(left) < span)
          span = Round(left);
        const std::uint64_t steps =
            span.fits_u64() ? span.low_u64()
                            : std::numeric_limits<std::uint64_t>::max();
        if (steps != 0) {
          for (std::uint64_t s = 0; s < steps; ++s) {
            for (std::uint32_t k = 0; k < rd.draw4; ++k) (void)rng.below(4);
            ctx.ambient_round(draw_move(p.move, ctx, rng), rd.emitted);
          }
          now += Round(steps);
          if (p.len != LenRule::kForever && (left -= steps) == 0)
            enter_phase(/*advance=*/true);
          continue;
        }
      }
      // Per-round replay: the live op walk with broadcasts suppressed
      // (but counted) and the move applied immediately, so the next
      // round's degree/draws see the post-move position.
      std::uint64_t emitted = 0;
      bool have_victim = false;
      for (const CompiledStrategy::Op& op : p.ops) {
        switch (op.kind) {
          case OpKind::kDrawVictim:
            if (!peers.empty()) {
              (void)rng.below(peers.size());
              have_victim = true;
            }
            break;
          case OpKind::kBroadcast:
            consume_payload_draws(op.payload, rng);
            ++emitted;
            break;
          case OpKind::kSpoofBroadcast:
            if (have_victim) {
              consume_payload_draws(op.payload, rng);
              ++emitted;
            }
            break;
          case OpKind::kNextSubround:
            break;
        }
      }
      ctx.ambient_round(draw_move(p.move, ctx, rng), emitted);
      now += 1;
      if (p.len != LenRule::kForever && --left == 0)
        enter_phase(/*advance=*/true);
      continue;
    }
    // ----- live: the engine is simulating round `now` -----------------
    if (ctx.draining()) {
      co_await ctx.end_round_ambient(std::nullopt);
      now = ctx.round();
      continue;
    }
    if (const Round d = gate.pending(now); d != Round(0)) {
      co_await ctx.sleep_rounds(d);
      now = ctx.round();
      continue;
    }
    {
      const CompiledStrategy::Phase& p = cs.phases[phase];
      sim::RobotId victim = 0;
      bool have_victim = false;
      PayloadBuf words;  // refilled per op; draws happen in fill order
      const auto& shared = shared_payloads[phase];
      for (std::size_t oi = 0; oi < p.ops.size(); ++oi) {
        const CompiledStrategy::Op& op = p.ops[oi];
        switch (op.kind) {
          case OpKind::kDrawVictim:
            if (!peers.empty()) {
              victim = peers[rng.below(peers.size())];
              have_victim = true;
            }
            break;
          case OpKind::kBroadcast:
            if (const auto& blocks = shared[oi]; blocks.size() == 1) {
              ctx.broadcast_shared(op.msg_kind, blocks[0]);
            } else if (blocks.size() == 4) {
              ctx.broadcast_shared(op.msg_kind, blocks[rng.below(4)]);
            } else {
              fill_payload(op.payload, rng, words);
              ctx.broadcast_pooled(op.msg_kind, {words.data(), words.size()});
            }
            break;
          case OpKind::kSpoofBroadcast:
            if (have_victim) {
              if (const auto& blocks = shared[oi]; blocks.size() == 1) {
                ctx.spoof_broadcast_shared(victim, op.msg_kind, blocks[0]);
              } else if (blocks.size() == 4) {
                ctx.spoof_broadcast_shared(victim, op.msg_kind,
                                           blocks[rng.below(4)]);
              } else {
                fill_payload(op.payload, rng, words);
                ctx.spoof_broadcast_pooled(victim, op.msg_kind,
                                           {words.data(), words.size()});
              }
            }
            break;
          case OpKind::kNextSubround:
            co_await ctx.next_subround();
            break;
        }
      }
      co_await ctx.end_round_ambient(draw_move(p.move, ctx, rng));
      now += 1;
      if (p.len != LenRule::kForever && --left == 0)
        enter_phase(/*advance=*/true);
    }
  }
}

}  // namespace

std::string to_string(ByzStrategy s) {
  switch (s) {
    case ByzStrategy::kCrash: return "crash";
    case ByzStrategy::kRandomWalker: return "random_walker";
    case ByzStrategy::kSquatter: return "squatter";
    case ByzStrategy::kFakeSettler: return "fake_settler";
    case ByzStrategy::kSilentSettler: return "silent_settler";
    case ByzStrategy::kIntentSpammer: return "intent_spammer";
    case ByzStrategy::kMapLiar: return "map_liar";
    case ByzStrategy::kSpoofer: return "spoofer";
  }
  // An out-of-range value is corrupted or foreign data (a checkpoint from
  // a future strategy set): a silent "unknown" would round-trip through
  // strategy_from_string to nullopt and quietly drop the record. Fail.
  throw std::invalid_argument(
      "to_string(ByzStrategy): invalid strategy value " +
      std::to_string(static_cast<int>(s)));
}

std::optional<ByzStrategy> strategy_from_string(const std::string& name) {
  // Iterate the shared registry (all weak strategies + the strong spoofer)
  // so a newly added strategy cannot fall out of sync with to_string.
  for (const ByzStrategy s : weak_strategies())
    if (to_string(s) == name) return s;
  if (to_string(ByzStrategy::kSpoofer) == name) return ByzStrategy::kSpoofer;
  return std::nullopt;
}

const std::vector<ByzStrategy>& weak_strategies() {
  static const std::vector<ByzStrategy> kAll{
      ByzStrategy::kCrash,         ByzStrategy::kRandomWalker,
      ByzStrategy::kSquatter,      ByzStrategy::kFakeSettler,
      ByzStrategy::kSilentSettler, ByzStrategy::kIntentSpammer,
      ByzStrategy::kMapLiar,
  };
  return kAll;
}

sim::ProgramFactory make_byzantine_program(ByzStrategy strategy,
                                           std::vector<sim::RobotId> peer_ids,
                                           std::uint64_t seed) {
  return make_byzantine_program(strategy, std::move(peer_ids), seed,
                                ByzSchedule{});
}

sim::ProgramFactory make_byzantine_program(ByzStrategy strategy,
                                           std::vector<sim::RobotId> peer_ids,
                                           std::uint64_t seed,
                                           ByzSchedule schedule) {
  validate_schedule(schedule);
  switch (strategy) {
    case ByzStrategy::kCrash:
      return [](Ctx c) { return crash_program(c); };
    case ByzStrategy::kRandomWalker:
      return [=](Ctx c) { return random_walker(c, schedule, Rng(seed)); };
    case ByzStrategy::kSquatter:
      return [=](Ctx c) { return squatter(c, schedule); };
    case ByzStrategy::kFakeSettler:
      return [=](Ctx c) { return fake_settler(c, schedule, Rng(seed)); };
    case ByzStrategy::kSilentSettler:
      return [=](Ctx c) { return silent_settler(c, schedule); };
    case ByzStrategy::kIntentSpammer:
      return [=](Ctx c) { return intent_spammer(c, schedule, Rng(seed)); };
    case ByzStrategy::kMapLiar:
      return [=](Ctx c) { return map_liar(c, schedule, Rng(seed)); };
    case ByzStrategy::kSpoofer:
      return [=, peers = std::move(peer_ids)](Ctx c) {
        // Validate at program start, before any sleep: the factory body
        // runs synchronously when the engine starts the program, so a
        // weak robot handed the spoofer aborts the run at round 0 instead
        // of failing only once its charged prefix (possibly > 2^64
        // rounds) finally ends.
        if (c.faultiness() != sim::Faultiness::kStrongByzantine)
          throw std::logic_error("spoofer strategy requires a strong robot");
        return spoofer(c, schedule, peers, Rng(seed));
      };
  }
  throw std::invalid_argument("make_byzantine_program: bad strategy");
}

std::optional<CompiledStrategy> compile_strategy(ByzStrategy s) {
  using CS = CompiledStrategy;
  const auto lit = [](std::int64_t v) { return CS::PayloadElem{v, false}; };
  const CS::PayloadElem draw4{0, true};
  const auto bcast = [](std::uint32_t kind,
                        std::vector<CS::PayloadElem> payload = {}) {
    return CS::Op{CS::OpKind::kBroadcast, kind, std::move(payload)};
  };
  const auto spoof = [](std::uint32_t kind,
                        std::vector<CS::PayloadElem> payload = {}) {
    return CS::Op{CS::OpKind::kSpoofBroadcast, kind, std::move(payload)};
  };
  const CS::Op victim{CS::OpKind::kDrawVictim, 0, {}};
  const CS::Op subround{CS::OpKind::kNextSubround, 0, {}};
  // Derive each phase's replay shape: a phase is bulk-replayable (one
  // range effect for the whole stretch) iff no op or move consumes a
  // draw; spoof phases always draw victims, so they never qualify and
  // their peers-dependent message count stays with the per-round walk.
  const auto finalize = [](CS cs) {
    for (auto& p : cs.phases) {
      bool draws = p.move != CS::MoveRule::kStay;
      std::uint64_t msgs = 0;
      for (const auto& op : p.ops) {
        if (op.kind == CS::OpKind::kBroadcast ||
            op.kind == CS::OpKind::kSpoofBroadcast)
          ++msgs;
        if (op.kind == CS::OpKind::kDrawVictim) draws = true;
        for (const auto& e : op.payload)
          if (e.draw_below4) draws = true;
      }
      p.messages_per_round = msgs;
      p.bulk_ok = !draws;
    }
    return cs;
  };

  CS cs;
  switch (s) {
    case ByzStrategy::kCrash:
      return std::nullopt;  // finishes at round 0; nothing to compile
    case ByzStrategy::kRandomWalker:
      cs.phases.push_back({CS::LenRule::kForever,
                           0,
                           0,
                           false,
                           {bcast(kMsgStatus, {lit(kStateToBeSettled)})},
                           CS::MoveRule::kRandomPort});
      return finalize(std::move(cs));
    case ByzStrategy::kSquatter:
      cs.phases.push_back({CS::LenRule::kForever,
                           0,
                           0,
                           false,
                           {bcast(kMsgStatus, {lit(kStateSettled)})},
                           CS::MoveRule::kStay});
      return finalize(std::move(cs));
    case ByzStrategy::kFakeSettler:
      // squat_len = 2 + below(2n) drawn once; hops = 1 + below(3) drawn
      // at each entry of the relocation phase.
      cs.phases.push_back({CS::LenRule::kDrawOnce,
                           2,
                           2,
                           /*n_scaled=*/true,
                           {bcast(kMsgStatus, {lit(kStateSettled)})},
                           CS::MoveRule::kStay});
      cs.phases.push_back({CS::LenRule::kDrawEachEntry,
                           1,
                           3,
                           false,
                           {},
                           CS::MoveRule::kRandomPort});
      return finalize(std::move(cs));
    case ByzStrategy::kSilentSettler:
      cs.phases.push_back({CS::LenRule::kFixed,
                           3,
                           0,
                           false,
                           {bcast(kMsgStatus, {lit(kStateSettled)})},
                           CS::MoveRule::kStay});
      cs.loop = false;  // then vanish from the airwaves for good
      return finalize(std::move(cs));
    case ByzStrategy::kIntentSpammer:
      cs.phases.push_back({CS::LenRule::kForever,
                           0,
                           0,
                           false,
                           {bcast(kMsgStatus, {lit(kStateToBeSettled)}),
                            bcast(kMsgIntent), bcast(kMsgSettled)},
                           CS::MoveRule::kRandomPort});
      return finalize(std::move(cs));
    case ByzStrategy::kMapLiar:
      cs.phases.push_back(
          {CS::LenRule::kForever,
           0,
           0,
           false,
           {bcast(explore::kMsgTokenHere),
            bcast(explore::kMsgInstr,
                  {lit(static_cast<std::int64_t>(explore::MapOp::kTMove)),
                   draw4}),
            bcast(explore::kMsgMapCode, {lit(1), lit(0)}), subround,
            bcast(explore::kMsgTokenHere)},
           CS::MoveRule::kChancePort});
      return finalize(std::move(cs));
    case ByzStrategy::kSpoofer: {
      CS::Phase p;
      p.len = CS::LenRule::kForever;
      p.move = CS::MoveRule::kChancePort;
      for (int i = 0; i < 3; ++i) {
        p.ops.push_back(victim);
        p.ops.push_back(spoof(kMsgStatus, {lit(kStateSettled)}));
        p.ops.push_back(spoof(explore::kMsgTokenHere));
        p.ops.push_back(spoof(
            explore::kMsgInstr,
            {lit(static_cast<std::int64_t>(explore::MapOp::kTMove)), draw4}));
        p.ops.push_back(spoof(explore::kMsgMapCode, {lit(1), lit(0)}));
        p.ops.push_back(spoof(kMsgSettled));
      }
      p.ops.push_back(subround);
      for (int i = 0; i < 2; ++i) {
        p.ops.push_back(victim);
        p.ops.push_back(spoof(explore::kMsgTokenHere));
      }
      cs.phases.push_back(std::move(p));
      cs.spoofing = true;
      return finalize(std::move(cs));
    }
  }
  throw std::invalid_argument("compile_strategy: bad strategy");
}

sim::ProgramFactory make_compiled_byzantine_program(
    ByzStrategy strategy, std::vector<sim::RobotId> peer_ids,
    std::uint64_t seed, ByzSchedule schedule) {
  std::optional<CompiledStrategy> cs = compile_strategy(strategy);
  if (!cs.has_value())
    return make_byzantine_program(strategy, std::move(peer_ids), seed,
                                  std::move(schedule));
  validate_schedule(schedule);
  return [cs = std::move(*cs), schedule = std::move(schedule),
          peers = std::move(peer_ids), seed](Ctx c) {
    // Same t=0 enforcement as the coroutine factory: a weak robot handed
    // the spoofer aborts before any sleep.
    if (cs.spoofing && c.faultiness() != sim::Faultiness::kStrongByzantine)
      throw std::logic_error("spoofer strategy requires a strong robot");
    return run_compiled(c, cs, schedule, peers, Rng(seed));
  };
}

}  // namespace bdg::core
