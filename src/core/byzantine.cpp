#include "core/byzantine.h"

#include <stdexcept>

#include "core/protocol_msgs.h"
#include "explore/engine_map.h"

namespace bdg::core {
namespace {

using sim::Ctx;
using sim::Proc;

std::optional<Port> random_port(Ctx& ctx, Rng& rng) {
  if (ctx.degree() == 0) return std::nullopt;
  return static_cast<Port>(rng.below(ctx.degree()));
}

/// Cursor over a schedule's charged windows. pending() returns how long to
/// sleep from `now` to clear the window containing it (0 = outside every
/// window). Windows are sorted, so the cursor only ever advances —
/// checking costs O(1) per awake round.
struct ChargeGate {
  ByzSchedule sched;
  std::size_t next = 0;

  [[nodiscard]] Round pending(Round now) {
    while (next < sched.charged.size() && now >= sched.charged[next].second)
      ++next;
    if (next < sched.charged.size() && now >= sched.charged[next].first)
      return sched.charged[next].second - now;
    return 0;
  }
};

// Every strategy loop starts a round with this: sleep out the initial
// charged prefix and, later, every charged window of subsequent waves.
// Single-wave schedules have no windows, so behavior (and RNG draws) are
// bit-identical to the pre-schedule code there.
#define BDG_BYZ_SKIP_CHARGED(gate, ctx)                                 \
  for (Round d_ = (gate).pending((ctx).round()); d_ != Round(0);        \
       d_ = (gate).pending((ctx).round()))                              \
  co_await (ctx).sleep_rounds(d_)

Proc crash_program(Ctx ctx) {
  (void)ctx;
  co_return;
}

Proc random_walker(Ctx ctx, ByzSchedule sched, Rng rng) {
  ChargeGate gate{std::move(sched)};
  if (gate.sched.wake != 0) co_await ctx.sleep_rounds(gate.sched.wake);
  for (;;) {
    BDG_BYZ_SKIP_CHARGED(gate, ctx);
    ctx.broadcast(kMsgStatus, {kStateToBeSettled});
    co_await ctx.end_round(random_port(ctx, rng));
  }
}

Proc squatter(Ctx ctx, ByzSchedule sched) {
  ChargeGate gate{std::move(sched)};
  if (gate.sched.wake != 0) co_await ctx.sleep_rounds(gate.sched.wake);
  for (;;) {
    BDG_BYZ_SKIP_CHARGED(gate, ctx);
    ctx.broadcast(kMsgStatus, {kStateSettled});
    co_await ctx.end_round(std::nullopt);
  }
}

Proc fake_settler(Ctx ctx, ByzSchedule sched, Rng rng) {
  ChargeGate gate{std::move(sched)};
  if (gate.sched.wake != 0) co_await ctx.sleep_rounds(gate.sched.wake);
  const std::uint64_t squat_len = 2 + rng.below(2 * ctx.n());
  for (;;) {
    // Claim to be settled here for a while...
    for (std::uint64_t i = 0; i < squat_len; ++i) {
      BDG_BYZ_SKIP_CHARGED(gate, ctx);
      ctx.broadcast(kMsgStatus, {kStateSettled});
      co_await ctx.end_round(std::nullopt);
    }
    // ...then sneak a few hops away and claim again (classic A_r bait).
    const std::uint64_t hops = 1 + rng.below(3);
    for (std::uint64_t i = 0; i < hops; ++i) {
      BDG_BYZ_SKIP_CHARGED(gate, ctx);
      co_await ctx.end_round(random_port(ctx, rng));
    }
  }
}

Proc silent_settler(Ctx ctx, ByzSchedule sched) {
  ChargeGate gate{std::move(sched)};
  if (gate.sched.wake != 0) co_await ctx.sleep_rounds(gate.sched.wake);
  // Claim Settled briefly, then vanish from the airwaves: visitors that
  // recorded us must blacklist us for the missing beacon (paper step 4).
  for (int i = 0; i < 3; ++i) {
    BDG_BYZ_SKIP_CHARGED(gate, ctx);
    ctx.broadcast(kMsgStatus, {kStateSettled});
    co_await ctx.end_round(std::nullopt);
  }
  co_return;
}

Proc intent_spammer(Ctx ctx, ByzSchedule sched, Rng rng) {
  ChargeGate gate{std::move(sched)};
  if (gate.sched.wake != 0) co_await ctx.sleep_rounds(gate.sched.wake);
  for (;;) {
    BDG_BYZ_SKIP_CHARGED(gate, ctx);
    // Announce settling without ever staying put; forces honest robots to
    // record us and exercise the relocation blacklist rule.
    ctx.broadcast(kMsgStatus, {kStateToBeSettled});
    ctx.broadcast(kMsgIntent);
    ctx.broadcast(kMsgSettled);
    co_await ctx.end_round(random_port(ctx, rng));
  }
}

Proc map_liar(Ctx ctx, ByzSchedule sched, Rng rng) {
  ChargeGate gate{std::move(sched)};
  if (gate.sched.wake != 0) co_await ctx.sleep_rounds(gate.sched.wake);
  for (;;) {
    BDG_BYZ_SKIP_CHARGED(gate, ctx);
    // Lie on every map-finding channel at once: fake token presence, fake
    // instructions, garbage map codes.
    ctx.broadcast(explore::kMsgTokenHere);
    ctx.broadcast(explore::kMsgInstr,
                  {static_cast<std::int64_t>(explore::MapOp::kTMove),
                   static_cast<std::int64_t>(rng.below(4))});
    ctx.broadcast(explore::kMsgMapCode, {1, 0});
    co_await ctx.next_subround();
    ctx.broadcast(explore::kMsgTokenHere);
    co_await ctx.end_round(rng.chance(1, 2) ? random_port(ctx, rng)
                                            : std::nullopt);
  }
}

Proc spoofer(Ctx ctx, ByzSchedule sched, std::vector<sim::RobotId> peers,
             Rng rng) {
  ChargeGate gate{std::move(sched)};
  if (gate.sched.wake != 0) co_await ctx.sleep_rounds(gate.sched.wake);
  if (ctx.faultiness() != sim::Faultiness::kStrongByzantine)
    throw std::logic_error("spoofer strategy requires a strong robot");
  for (;;) {
    BDG_BYZ_SKIP_CHARGED(gate, ctx);
    // Forge votes under several peers' identities on all channels.
    for (int i = 0; i < 3 && !peers.empty(); ++i) {
      const sim::RobotId victim = peers[rng.below(peers.size())];
      ctx.spoof_broadcast(victim, kMsgStatus, {kStateSettled});
      ctx.spoof_broadcast(victim, explore::kMsgTokenHere);
      ctx.spoof_broadcast(victim, explore::kMsgInstr,
                          {static_cast<std::int64_t>(explore::MapOp::kTMove),
                           static_cast<std::int64_t>(rng.below(4))});
      ctx.spoof_broadcast(victim, explore::kMsgMapCode, {1, 0});
      ctx.spoof_broadcast(victim, kMsgSettled);
    }
    co_await ctx.next_subround();
    for (int i = 0; i < 2 && !peers.empty(); ++i) {
      const sim::RobotId victim = peers[rng.below(peers.size())];
      ctx.spoof_broadcast(victim, explore::kMsgTokenHere);
    }
    co_await ctx.end_round(rng.chance(1, 2) ? random_port(ctx, rng)
                                            : std::nullopt);
  }
}

#undef BDG_BYZ_SKIP_CHARGED

}  // namespace

std::string to_string(ByzStrategy s) {
  switch (s) {
    case ByzStrategy::kCrash: return "crash";
    case ByzStrategy::kRandomWalker: return "random_walker";
    case ByzStrategy::kSquatter: return "squatter";
    case ByzStrategy::kFakeSettler: return "fake_settler";
    case ByzStrategy::kSilentSettler: return "silent_settler";
    case ByzStrategy::kIntentSpammer: return "intent_spammer";
    case ByzStrategy::kMapLiar: return "map_liar";
    case ByzStrategy::kSpoofer: return "spoofer";
  }
  return "unknown";
}

std::optional<ByzStrategy> strategy_from_string(const std::string& name) {
  // Iterate the shared registry (all weak strategies + the strong spoofer)
  // so a newly added strategy cannot fall out of sync with to_string.
  for (const ByzStrategy s : weak_strategies())
    if (to_string(s) == name) return s;
  if (to_string(ByzStrategy::kSpoofer) == name) return ByzStrategy::kSpoofer;
  return std::nullopt;
}

const std::vector<ByzStrategy>& weak_strategies() {
  static const std::vector<ByzStrategy> kAll{
      ByzStrategy::kCrash,         ByzStrategy::kRandomWalker,
      ByzStrategy::kSquatter,      ByzStrategy::kFakeSettler,
      ByzStrategy::kSilentSettler, ByzStrategy::kIntentSpammer,
      ByzStrategy::kMapLiar,
  };
  return kAll;
}

sim::ProgramFactory make_byzantine_program(ByzStrategy strategy,
                                           std::vector<sim::RobotId> peer_ids,
                                           std::uint64_t seed) {
  return make_byzantine_program(strategy, std::move(peer_ids), seed,
                                ByzSchedule{});
}

sim::ProgramFactory make_byzantine_program(ByzStrategy strategy,
                                           std::vector<sim::RobotId> peer_ids,
                                           std::uint64_t seed,
                                           ByzSchedule schedule) {
  switch (strategy) {
    case ByzStrategy::kCrash:
      return [](Ctx c) { return crash_program(c); };
    case ByzStrategy::kRandomWalker:
      return [=](Ctx c) { return random_walker(c, schedule, Rng(seed)); };
    case ByzStrategy::kSquatter:
      return [=](Ctx c) { return squatter(c, schedule); };
    case ByzStrategy::kFakeSettler:
      return [=](Ctx c) { return fake_settler(c, schedule, Rng(seed)); };
    case ByzStrategy::kSilentSettler:
      return [=](Ctx c) { return silent_settler(c, schedule); };
    case ByzStrategy::kIntentSpammer:
      return [=](Ctx c) { return intent_spammer(c, schedule, Rng(seed)); };
    case ByzStrategy::kMapLiar:
      return [=](Ctx c) { return map_liar(c, schedule, Rng(seed)); };
    case ByzStrategy::kSpoofer:
      return [=, peers = std::move(peer_ids)](Ctx c) {
        return spoofer(c, schedule, peers, Rng(seed));
      };
  }
  throw std::invalid_argument("make_byzantine_program: bad strategy");
}

}  // namespace bdg::core
