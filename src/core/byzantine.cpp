#include "core/byzantine.h"

#include <stdexcept>

#include "core/protocol_msgs.h"
#include "explore/engine_map.h"

namespace bdg::core {
namespace {

using sim::Ctx;
using sim::Proc;

std::optional<Port> random_port(Ctx& ctx, Rng& rng) {
  if (ctx.degree() == 0) return std::nullopt;
  return static_cast<Port>(rng.below(ctx.degree()));
}

/// Sleep through charged oracle phases (where there is nothing to attack
/// and staying awake would defeat the engine's fast-forwarding).
Proc crash_program(Ctx ctx) {
  (void)ctx;
  co_return;
}

Proc random_walker(Ctx ctx, std::uint64_t wake, Rng rng) {
  if (wake > 0) co_await ctx.sleep_rounds(wake);
  for (;;) {
    ctx.broadcast(kMsgStatus, {kStateToBeSettled});
    co_await ctx.end_round(random_port(ctx, rng));
  }
}

Proc squatter(Ctx ctx, std::uint64_t wake) {
  if (wake > 0) co_await ctx.sleep_rounds(wake);
  for (;;) {
    ctx.broadcast(kMsgStatus, {kStateSettled});
    co_await ctx.end_round(std::nullopt);
  }
}

Proc fake_settler(Ctx ctx, std::uint64_t wake, Rng rng) {
  if (wake > 0) co_await ctx.sleep_rounds(wake);
  const std::uint64_t squat_len = 2 + rng.below(2 * ctx.n());
  for (;;) {
    // Claim to be settled here for a while...
    for (std::uint64_t i = 0; i < squat_len; ++i) {
      ctx.broadcast(kMsgStatus, {kStateSettled});
      co_await ctx.end_round(std::nullopt);
    }
    // ...then sneak a few hops away and claim again (classic A_r bait).
    const std::uint64_t hops = 1 + rng.below(3);
    for (std::uint64_t i = 0; i < hops; ++i)
      co_await ctx.end_round(random_port(ctx, rng));
  }
}

Proc silent_settler(Ctx ctx, std::uint64_t wake) {
  if (wake > 0) co_await ctx.sleep_rounds(wake);
  // Claim Settled briefly, then vanish from the airwaves: visitors that
  // recorded us must blacklist us for the missing beacon (paper step 4).
  for (int i = 0; i < 3; ++i) {
    ctx.broadcast(kMsgStatus, {kStateSettled});
    co_await ctx.end_round(std::nullopt);
  }
  co_return;
}

Proc intent_spammer(Ctx ctx, std::uint64_t wake, Rng rng) {
  if (wake > 0) co_await ctx.sleep_rounds(wake);
  for (;;) {
    // Announce settling without ever staying put; forces honest robots to
    // record us and exercise the relocation blacklist rule.
    ctx.broadcast(kMsgStatus, {kStateToBeSettled});
    ctx.broadcast(kMsgIntent);
    ctx.broadcast(kMsgSettled);
    co_await ctx.end_round(random_port(ctx, rng));
  }
}

Proc map_liar(Ctx ctx, std::uint64_t wake, Rng rng) {
  if (wake > 0) co_await ctx.sleep_rounds(wake);
  for (;;) {
    // Lie on every map-finding channel at once: fake token presence, fake
    // instructions, garbage map codes.
    ctx.broadcast(explore::kMsgTokenHere);
    ctx.broadcast(explore::kMsgInstr,
                  {static_cast<std::int64_t>(explore::MapOp::kTMove),
                   static_cast<std::int64_t>(rng.below(4))});
    ctx.broadcast(explore::kMsgMapCode, {1, 0});
    co_await ctx.next_subround();
    ctx.broadcast(explore::kMsgTokenHere);
    co_await ctx.end_round(rng.chance(1, 2) ? random_port(ctx, rng)
                                            : std::nullopt);
  }
}

Proc spoofer(Ctx ctx, std::uint64_t wake, std::vector<sim::RobotId> peers,
             Rng rng) {
  if (wake > 0) co_await ctx.sleep_rounds(wake);
  if (ctx.faultiness() != sim::Faultiness::kStrongByzantine)
    throw std::logic_error("spoofer strategy requires a strong robot");
  for (;;) {
    // Forge votes under several peers' identities on all channels.
    for (int i = 0; i < 3 && !peers.empty(); ++i) {
      const sim::RobotId victim = peers[rng.below(peers.size())];
      ctx.spoof_broadcast(victim, kMsgStatus, {kStateSettled});
      ctx.spoof_broadcast(victim, explore::kMsgTokenHere);
      ctx.spoof_broadcast(victim, explore::kMsgInstr,
                          {static_cast<std::int64_t>(explore::MapOp::kTMove),
                           static_cast<std::int64_t>(rng.below(4))});
      ctx.spoof_broadcast(victim, explore::kMsgMapCode, {1, 0});
      ctx.spoof_broadcast(victim, kMsgSettled);
    }
    co_await ctx.next_subround();
    for (int i = 0; i < 2 && !peers.empty(); ++i) {
      const sim::RobotId victim = peers[rng.below(peers.size())];
      ctx.spoof_broadcast(victim, explore::kMsgTokenHere);
    }
    co_await ctx.end_round(rng.chance(1, 2) ? random_port(ctx, rng)
                                            : std::nullopt);
  }
}

}  // namespace

std::string to_string(ByzStrategy s) {
  switch (s) {
    case ByzStrategy::kCrash: return "crash";
    case ByzStrategy::kRandomWalker: return "random_walker";
    case ByzStrategy::kSquatter: return "squatter";
    case ByzStrategy::kFakeSettler: return "fake_settler";
    case ByzStrategy::kSilentSettler: return "silent_settler";
    case ByzStrategy::kIntentSpammer: return "intent_spammer";
    case ByzStrategy::kMapLiar: return "map_liar";
    case ByzStrategy::kSpoofer: return "spoofer";
  }
  return "unknown";
}

std::optional<ByzStrategy> strategy_from_string(const std::string& name) {
  // Iterate the shared registry (all weak strategies + the strong spoofer)
  // so a newly added strategy cannot fall out of sync with to_string.
  for (const ByzStrategy s : weak_strategies())
    if (to_string(s) == name) return s;
  if (to_string(ByzStrategy::kSpoofer) == name) return ByzStrategy::kSpoofer;
  return std::nullopt;
}

const std::vector<ByzStrategy>& weak_strategies() {
  static const std::vector<ByzStrategy> kAll{
      ByzStrategy::kCrash,         ByzStrategy::kRandomWalker,
      ByzStrategy::kSquatter,      ByzStrategy::kFakeSettler,
      ByzStrategy::kSilentSettler, ByzStrategy::kIntentSpammer,
      ByzStrategy::kMapLiar,
  };
  return kAll;
}

sim::ProgramFactory make_byzantine_program(ByzStrategy strategy,
                                           std::vector<sim::RobotId> peer_ids,
                                           std::uint64_t seed) {
  return make_byzantine_program(strategy, std::move(peer_ids), seed, 0);
}

sim::ProgramFactory make_byzantine_program(ByzStrategy strategy,
                                           std::vector<sim::RobotId> peer_ids,
                                           std::uint64_t seed,
                                           std::uint64_t wake_round) {
  switch (strategy) {
    case ByzStrategy::kCrash:
      return [](Ctx c) { return crash_program(c); };
    case ByzStrategy::kRandomWalker:
      return [=](Ctx c) { return random_walker(c, wake_round, Rng(seed)); };
    case ByzStrategy::kSquatter:
      return [=](Ctx c) { return squatter(c, wake_round); };
    case ByzStrategy::kFakeSettler:
      return [=](Ctx c) { return fake_settler(c, wake_round, Rng(seed)); };
    case ByzStrategy::kSilentSettler:
      return [=](Ctx c) { return silent_settler(c, wake_round); };
    case ByzStrategy::kIntentSpammer:
      return [=](Ctx c) { return intent_spammer(c, wake_round, Rng(seed)); };
    case ByzStrategy::kMapLiar:
      return [=](Ctx c) { return map_liar(c, wake_round, Rng(seed)); };
    case ByzStrategy::kSpoofer:
      return [=, peers = std::move(peer_ids)](Ctx c) {
        return spoofer(c, wake_round, peers, Rng(seed));
      };
  }
  throw std::invalid_argument("make_byzantine_program: bad strategy");
}

}  // namespace bdg::core
