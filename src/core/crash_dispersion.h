#pragma once
// EXTENSION (paper future-work direction 1: "to solve this problem faster,
// it is useful to solve gathering in the presence of Byzantine robots
// faster"): a dispersion pipeline whose Phase 1 is a REAL, fully simulated
// gathering — no charged oracle bound — at the price of a weaker fault
// model (crash faults: a faulty robot stops participating but never lies).
//
// Pipeline: bit-epoch rendezvous gathering (gather/bit_epoch.h,
// (|Lambda|+1) * 2n real rounds) -> the Theorem 4 three-group map finding
// and Dispersion-Using-Map from the rally point. Tolerates up to
// floor(n/3)-1 crashed robots (the three-group quorum analysis applies to
// silent members exactly as to Byzantine ones).
#include "core/algorithm_common.h"
#include "gather/gathering.h"

namespace bdg::core {

/// Plan the crash-fault pipeline on g from arbitrary starts. Every round
/// of the result is actually simulated (no oracle charges), which is what
/// makes this variant an interesting baseline against the Theorem 2 bound.
[[nodiscard]] AlgorithmPlan plan_crash_real_dispersion(
    const Graph& g, std::vector<sim::RobotId> ids,
    const gather::CostModel& cost);

}  // namespace bdg::core
