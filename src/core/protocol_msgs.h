#pragma once
// Message kinds used by the dispersion protocols (core owns 200..299;
// map finding owns 100..199, gathering extensions 150..159).
#include <cstdint>

namespace bdg::core {

enum DispersionMsgKind : std::uint32_t {
  /// Per-round presence/state beacon; data = [state] with 0 = tobeSettled,
  /// 1 = Settled. Every robot executing Dispersion-Using-Map broadcasts it
  /// in sub-round 0 (a silent recorded settler gets blacklisted, paper
  /// step 4).
  kMsgStatus = 200,
  /// "Flag = 1": the sender intends to settle at this node this round.
  kMsgIntent = 201,
  /// State-change announcement: the sender settles here now.
  kMsgSettled = 202,
  /// Roster exchange when establishing the gathered participant list.
  kMsgRoll = 203,
};

enum DispersionState : std::int64_t {
  kStateToBeSettled = 0,
  kStateSettled = 1,
};

}  // namespace bdg::core
