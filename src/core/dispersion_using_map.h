#pragma once
// Procedure Dispersion-Using-Map (paper Section 2.2).
//
// Each robot holds a map isomorphic to the graph and its own position on
// it. It walks the Euler tour of a DFS spanning tree of its map and, at
// every node it enters, runs the paper's rank-ordered settle decision:
//
//   * sub-round 0: everyone broadcasts STATUS(state);
//   * sub-round 1: robots with no valid settler in sight broadcast INTENT
//     (the paper's flag = 1);
//   * sub-round 3 + rank (rank = position of the robot's ID in the total
//     order over all claimed-tobeSettled IDs present — a common set for
//     every honest observer, which is what makes the device sound): the
//     robot settles unless it has seen a non-blacklisted settled claim at
//     this node (prior STATUS or a SETTLED announcement by a smaller rank
//     this round), in which case it records those IDs in A_r[v] and moves
//     on (steps 1-3 of the paper collapse into this rule).
//
// Blacklist maintenance (paper step 4): a robot recorded settled at one
// node that is ever heard at another node, or that stays silent or claims
// tobeSettled where it was recorded, is blacklisted. Lemma 2 (an honest
// robot never blacklists another honest robot) holds because honest
// settlers never move and never miss a beacon; Lemma 3 (no two honest
// robots settle on the same node) holds by the rank order; Lemma 4
// (termination within the tour) holds by the pigeonhole argument.
#include <cstdint>
#include <set>

#include "core/round.h"
#include "graph/graph.h"
#include "sim/engine.h"
#include "sim/task.h"

namespace bdg::core {

struct DispersionParams {
  Graph map;          ///< isomorphic copy of the graph
  NodeId map_root;    ///< the robot's current node, in map coordinates
  /// Fixed phase length in rounds; every participant must use the same
  /// value (the protocol is synchronous). See dispersion_phase_rounds().
  Round phase_rounds = 0;
};

/// Default phase budget: three Euler tours plus slack (one tour suffices by
/// Lemma 4; the margin absorbs adversarial edge cases defensively).
[[nodiscard]] Round dispersion_phase_rounds(std::uint32_t n);

struct DispersionOutcome {
  bool settled = false;
  NodeId settled_map_node = kNoNode;  ///< in the robot's map coordinates
  std::uint64_t settle_round = 0;     ///< rounds into the phase
  std::uint32_t blacklisted = 0;      ///< |B_r| at the end
  std::uint32_t nodes_skipped = 0;    ///< settle opportunities passed up
};

/// Runs the procedure; consumes exactly params.phase_rounds rounds. On
/// success the robot physically sits on the node it settled at.
[[nodiscard]] sim::Task<DispersionOutcome> run_dispersion_using_map(
    sim::Ctx ctx, DispersionParams params);

}  // namespace bdg::core
