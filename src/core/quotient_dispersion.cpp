#include "core/quotient_dispersion.h"

#include <memory>

#include "core/dispersion_using_map.h"
#include "graph/quotient.h"

namespace bdg::core {
namespace {

sim::Proc quotient_robot(sim::Ctx ctx, Round map_charge, Graph map,
                         NodeId map_root, Round phase_rounds) {
  // Phase 1: Find-Map. Non-interactive; only the round charge is visible.
  if (map_charge > 0) co_await ctx.sleep_rounds(map_charge);
  // Phase 2: disperse with the quotient map.
  DispersionParams params;
  params.map = std::move(map);
  params.map_root = map_root;
  params.phase_rounds = phase_rounds;
  (void)co_await run_dispersion_using_map(ctx, std::move(params));
}

}  // namespace

AlgorithmPlan plan_quotient_dispersion(const Graph& g,
                                       const gather::CostModel& cost) {
  const auto n = static_cast<std::uint32_t>(g.n());
  const Round map_charge = cost.find_map_rounds(n);
  const Round phase = dispersion_phase_rounds(n);

  // Shared, precomputed quotient (identical for every robot; the per-robot
  // difference is only the root class).
  auto quotient = std::make_shared<QuotientResult>(quotient_graph(g));

  AlgorithmPlan plan;
  plan.total_rounds = map_charge + phase + 4;
  plan.byz_wake_round = map_charge;
  plan.honest = [quotient, map_charge, phase](sim::RobotId,
                                              NodeId start) -> sim::ProgramFactory {
    const NodeId root = quotient->cls[start];
    return [=](sim::Ctx c) {
      return quotient_robot(c, map_charge, quotient->quotient, root, phase);
    };
  };
  return plan;
}

}  // namespace bdg::core
