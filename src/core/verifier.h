#pragma once
// Byzantine dispersion verifier (Definition 1): after termination, every
// node holds at most one non-Byzantine robot, and every non-Byzantine
// robot terminated.
#include <cstdint>
#include <string>
#include <vector>

#include "core/round.h"
#include "sim/engine.h"

namespace bdg::core {

struct VerifyResult {
  bool dispersed = false;        ///< <= 1 honest robot per node
  bool all_honest_done = false;  ///< every honest program terminated
  std::uint32_t honest_count = 0;
  std::uint32_t worst_node_load = 0;  ///< max honest robots on one node
  std::string detail;                 ///< human-readable failure description

  [[nodiscard]] bool ok() const { return dispersed && all_honest_done; }
};

/// Inspect the engine's final state.
[[nodiscard]] VerifyResult verify_dispersion(const sim::Engine& engine);

/// Generalized check for the k-robot setting of Theorem 8: at most
/// ceil((k - f) / n) honest robots per node.
[[nodiscard]] VerifyResult verify_k_dispersion(const sim::Engine& engine,
                                               std::uint32_t k,
                                               std::uint32_t f);

/// Pre-run check of a plan's termination bound: passes for any exactly
/// representable 128-bit bound, and fails LOUDLY when the bound saturated
/// (the scenario must refuse to run — a capped bound would report
/// fictitious round counts). Sweeps turn the failure into a structured
/// skip, mirroring the Theorem 8 infeasibility machinery.
[[nodiscard]] VerifyResult verify_round_bound(const Round& planned);

}  // namespace bdg::core
