#pragma once
// Theorems 6 and 7: Byzantine dispersion with up to floor(n/4)-1 STRONG
// Byzantine robots (robots that can fake the IDs attached to their
// messages).
//
// Theorem 6 (gathered, O(n^3)): the k gathered robots split into two
// halves by sorted ID; one run of group map finding with absolute
// floor(n/4) quorums (every quorum counts distinct PHYSICAL senders, see
// Msg::source — forging needs quorum-many robots, and f < floor(n/4)).
// Phase 2 does not use communication at all: rank i in the agreed ID
// ordering settles at node v(i) of the agreed map — strong robots cannot
// interfere with silence.
//
// Theorem 7 (arbitrary start, exponential rounds, f known): gathering via
// [24]'s strong-Byzantine group gathering (oracle-charged, exponential),
// then the Theorem 6 algorithm.
#include "core/algorithm_common.h"
#include "gather/gathering.h"

namespace bdg::core {

/// Theorem 6 plan; robots start gathered at node 0.
[[nodiscard]] AlgorithmPlan plan_strong_gathered_dispersion(
    const Graph& g, std::vector<sim::RobotId> ids,
    const gather::CostModel& cost);

/// Theorem 7 plan; arbitrary start, requires f (paper: "the knowledge of f
/// is required in this case").
[[nodiscard]] AlgorithmPlan plan_strong_arbitrary_dispersion(
    const Graph& g, std::vector<sim::RobotId> ids, std::uint32_t f,
    const gather::CostModel& cost);

}  // namespace bdg::core
