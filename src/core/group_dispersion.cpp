#include "core/group_dispersion.h"

#include <algorithm>
#include <array>

#include "core/dispersion_using_map.h"
#include "explore/engine_map.h"

namespace bdg::core {
namespace {

using explore::MapFindConfig;
using explore::MapFindOutcome;

/// One group-run of map finding; the robot acts as an agent-group or
/// token-group member depending on its membership. Returns the code it
/// obtained (own construction or quorum-believed broadcast).
sim::Task<std::optional<CanonicalCode>> group_run(
    sim::Ctx ctx, std::vector<sim::RobotId> agents,
    std::vector<sim::RobotId> tokens, std::uint32_t agent_quorum,
    std::uint32_t token_quorum, Round t2, std::uint32_t n) {
  std::sort(agents.begin(), agents.end());
  std::sort(tokens.begin(), tokens.end());
  MapFindConfig cfg;
  cfg.agents = std::move(agents);
  cfg.tokens = std::move(tokens);
  cfg.agent_quorum = agent_quorum;
  cfg.token_quorum = token_quorum;
  cfg.round_budget = t2;
  cfg.n = n;
  const bool is_agent = std::binary_search(cfg.agents.begin(),
                                           cfg.agents.end(), ctx.self());
  // NOTE: co_await inside a conditional expression miscompiles on GCC
  // (temporary task frames are freed early); keep the awaits in plain
  // statements.
  MapFindOutcome out;
  if (is_agent) {
    out = co_await explore::run_map_agent(ctx, cfg);
  } else {
    out = co_await explore::run_map_token(ctx, cfg);
  }
  co_return out.code;
}

struct GroupPlanConfig {
  std::vector<sim::RobotId> ids;  // sorted
  std::uint32_t n = 0;
  Round t2 = 0;
  Round gather_rounds = 0;
  std::vector<Port> rally_path;
  Round phase_rounds = 0;
};

/// Split sorted ids into three groups: the smallest floor(k/3) IDs form A,
/// the next floor(k/3) form B, the rest form C (paper Section 3.2).
std::array<std::vector<sim::RobotId>, 3> three_groups(
    const std::vector<sim::RobotId>& ids) {
  const std::size_t k = ids.size();
  const std::size_t third = k / 3;
  std::array<std::vector<sim::RobotId>, 3> g;
  g[0].assign(ids.begin(), ids.begin() + third);
  g[1].assign(ids.begin() + third, ids.begin() + 2 * third);
  g[2].assign(ids.begin() + 2 * third, ids.end());
  return g;
}

std::vector<sim::RobotId> concat(const std::vector<sim::RobotId>& a,
                                 const std::vector<sim::RobotId>& b) {
  std::vector<sim::RobotId> out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

sim::Proc three_group_robot(sim::Ctx ctx, GroupPlanConfig cfg) {
  (void)co_await run_three_group_phase(ctx, cfg.ids, cfg.n, cfg.t2,
                                       cfg.phase_rounds);
}

sim::Proc sqrt_robot(sim::Ctx ctx, GroupPlanConfig cfg) {
  if (cfg.gather_rounds > 0) {
    gather::GatheringSpec spec{cfg.rally_path, cfg.gather_rounds};
    co_await gather::run_oracle_gathering(ctx, std::move(spec));
  }
  // Two halves; each side has an honest majority when f = O(sqrt n).
  const std::size_t half = cfg.ids.size() / 2;
  std::vector<sim::RobotId> agents(cfg.ids.begin(), cfg.ids.begin() + half);
  std::vector<sim::RobotId> tokens(cfg.ids.begin() + half, cfg.ids.end());
  const auto agent_q = static_cast<std::uint32_t>(agents.size() / 2 + 1);
  const auto token_q = static_cast<std::uint32_t>(tokens.size() / 2 + 1);

  const auto code = co_await group_run(ctx, std::move(agents),
                                       std::move(tokens), agent_q, token_q,
                                       cfg.t2, cfg.n);
  const auto map = code.has_value() ? decode_map(*code, cfg.n) : std::nullopt;
  if (!map.has_value()) co_return;

  DispersionParams params;
  params.map = *map;
  params.map_root = 0;
  params.phase_rounds = cfg.phase_rounds;
  (void)co_await run_dispersion_using_map(ctx, std::move(params));
}

}  // namespace

sim::Task<bool> run_three_group_phase(sim::Ctx ctx,
                                      std::vector<sim::RobotId> ids,
                                      std::uint32_t n, Round t2,
                                      Round phase_rounds) {
  std::sort(ids.begin(), ids.end());
  const auto groups = three_groups(ids);
  const auto k = static_cast<std::uint32_t>(ids.size());
  const std::uint32_t agent_q = k / 6 + 1;
  const std::uint32_t token_q = k / 3 + 1;

  std::vector<CanonicalCode> votes;
  // Run 1: A explores, B u C is the token; then rotate (paper Sec. 3.2).
  const std::array<std::pair<int, std::pair<int, int>>, 3> runs{
      {{0, {1, 2}}, {1, {0, 2}}, {2, {1, 0}}}};
  for (const auto& [agent_g, token_gs] : runs) {
    auto code = co_await group_run(
        ctx, groups[static_cast<std::size_t>(agent_g)],
        concat(groups[static_cast<std::size_t>(token_gs.first)],
               groups[static_cast<std::size_t>(token_gs.second)]),
        agent_q, token_q, t2, n);
    if (code.has_value()) votes.push_back(*code);
  }

  const auto code = majority_code(votes);
  const auto map = code.has_value() ? decode_map(*code, n) : std::nullopt;
  if (!map.has_value()) co_return false;

  DispersionParams params;
  params.map = *map;
  params.map_root = 0;
  params.phase_rounds = phase_rounds;
  const DispersionOutcome out =
      co_await run_dispersion_using_map(ctx, std::move(params));
  co_return out.settled;
}

AlgorithmPlan plan_three_group_dispersion(const Graph& g,
                                          std::vector<sim::RobotId> ids,
                                          const gather::CostModel& cost) {
  (void)cost;
  std::sort(ids.begin(), ids.end());
  const auto n = static_cast<std::uint32_t>(g.n());
  const Round t2 = explore::default_map_window(n);
  const Round phase = dispersion_phase_rounds(n);

  AlgorithmPlan plan;
  plan.total_rounds = 3 * t2 + phase + 8;
  plan.byz_wake_round = 0;
  plan.honest = [=](sim::RobotId, NodeId) -> sim::ProgramFactory {
    GroupPlanConfig cfg;
    cfg.ids = ids;
    cfg.n = n;
    cfg.t2 = t2;
    cfg.phase_rounds = phase;
    return [cfg = std::move(cfg)](sim::Ctx c) {
      return three_group_robot(c, cfg);
    };
  };
  return plan;
}

AlgorithmPlan plan_sqrt_dispersion(const Graph& g,
                                   std::vector<sim::RobotId> ids,
                                   std::uint32_t f,
                                   const gather::CostModel& cost) {
  std::sort(ids.begin(), ids.end());
  const auto n = static_cast<std::uint32_t>(g.n());
  const Round t2 = explore::default_map_window(n);
  const Round phase = dispersion_phase_rounds(n);
  const std::uint32_t lambda =
      gather::CostModel::id_bits(ids.empty() ? 1 : ids.back());
  const Round gather_rounds = std::max<Round>(
      cost.rounds(gather::GatherKind::kSqrtHirose, n, f, lambda), 2 * g.n());

  AlgorithmPlan plan;
  plan.total_rounds = gather_rounds + t2 + phase + 8;
  plan.byz_wake_round = gather_rounds;
  plan.honest = [=, g = &g](sim::RobotId, NodeId start) -> sim::ProgramFactory {
    GroupPlanConfig cfg;
    cfg.ids = ids;
    cfg.n = n;
    cfg.t2 = t2;
    cfg.gather_rounds = gather_rounds;
    cfg.phase_rounds = phase;
    auto path = g->shortest_path_ports(start, 0);
    cfg.rally_path = path.value_or(std::vector<Port>{});
    return [cfg = std::move(cfg)](sim::Ctx c) { return sqrt_robot(c, cfg); };
  };
  return plan;
}

}  // namespace bdg::core
