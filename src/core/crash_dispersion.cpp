#include "core/crash_dispersion.h"

#include <algorithm>

#include "core/dispersion_using_map.h"
#include "core/group_dispersion.h"
#include "explore/covering_walk.h"
#include "explore/engine_map.h"
#include "gather/bit_epoch.h"

namespace bdg::core {
namespace {

struct CrashPlanConfig {
  std::vector<sim::RobotId> ids;
  std::uint32_t n = 0;
  Round t2 = 0;
  Round phase_rounds = 0;
  gather::BitEpochSpec gather_spec;  // per-robot tour filled in honest()
};

sim::Proc crash_real_robot(sim::Ctx ctx, CrashPlanConfig cfg) {
  // Phase 1: REAL gathering — every round simulated, crash-tolerant.
  co_await gather::run_bit_epoch_gathering(ctx, cfg.gather_spec);
  // Phases 2+3: Theorem 4's machinery from the (arbitrary) rally node.
  // Crashed robots are simply silent group members; the quorum analysis
  // treats silence no worse than lies.
  (void)co_await run_three_group_phase(ctx, cfg.ids, cfg.n, cfg.t2,
                                       cfg.phase_rounds);
}

}  // namespace

AlgorithmPlan plan_crash_real_dispersion(const Graph& g,
                                         std::vector<sim::RobotId> ids,
                                         const gather::CostModel& cost) {
  (void)cost;
  std::sort(ids.begin(), ids.end());
  const auto n = static_cast<std::uint32_t>(g.n());
  const Round t2 = explore::default_map_window(n);
  const Round phase = dispersion_phase_rounds(n);
  std::uint32_t bits = 1;
  if (!ids.empty()) bits = gather::CostModel::id_bits(ids.back());
  const auto epoch = static_cast<std::uint32_t>(2 * g.n());

  gather::BitEpochSpec proto;
  proto.epoch_len = epoch;
  proto.id_bits = bits;
  const Round gather_rounds = gather::bit_epoch_total_rounds(proto);

  AlgorithmPlan plan;
  plan.total_rounds = gather_rounds + 3 * t2 + phase + 8;
  plan.byz_wake_round = 0;  // nothing is charged; crashers are silent anyway
  plan.honest = [=, g = &g](sim::RobotId, NodeId start) -> sim::ProgramFactory {
    CrashPlanConfig cfg;
    cfg.ids = ids;
    cfg.n = n;
    cfg.t2 = t2;
    cfg.phase_rounds = phase;
    cfg.gather_spec = proto;
    cfg.gather_spec.tour = covering_walk_ports(*g, start);
    return [cfg = std::move(cfg)](sim::Ctx c) {
      return crash_real_robot(c, cfg);
    };
  };
  return plan;
}

}  // namespace bdg::core
