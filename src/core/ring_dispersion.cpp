#include "core/ring_dispersion.h"

#include <stdexcept>

#include "core/dispersion_using_map.h"
#include "explore/ring_map.h"

namespace bdg::core {
namespace {

sim::Proc ring_robot(sim::Ctx ctx, Round phase_rounds) {
  // Phase 1: constructive, communication-free Find-Map (exactly n rounds,
  // so all robots enter Phase 2 together).
  Graph map = co_await explore::run_ring_find_map(ctx);
  // Phase 2: the robot is back at its start = map node 0.
  DispersionParams params;
  params.map = std::move(map);
  params.map_root = 0;
  params.phase_rounds = phase_rounds;
  (void)co_await run_dispersion_using_map(ctx, std::move(params));
}

}  // namespace

AlgorithmPlan plan_ring_dispersion(const Graph& g,
                                   const gather::CostModel& cost) {
  (void)cost;
  if (!explore::is_ring(g))
    throw std::invalid_argument("plan_ring_dispersion: graph is not a ring");
  const auto n = static_cast<std::uint32_t>(g.n());
  const Round phase = dispersion_phase_rounds(n);

  AlgorithmPlan plan;
  plan.total_rounds = n + phase + 4;
  plan.byz_wake_round = 0;
  plan.honest = [phase](sim::RobotId, NodeId) -> sim::ProgramFactory {
    return [phase](sim::Ctx c) { return ring_robot(c, phase); };
  };
  return plan;
}

}  // namespace bdg::core
