#pragma once
// Bit-epoch rendezvous gathering — a genuine (non-oracle-charged) gathering
// protocol for the crash-fault setting, provided as an extension (the
// paper's future-work direction 1 asks for faster gathering subroutines).
//
// All robots know n. Time is split into epochs of length L = |covering
// walk|. In epoch b, exactly the robots whose ID has bit b set walk their
// covering tour (returning to their start); the others stay. Any two
// distinct IDs differ in some bit, so in some epoch one of them tours all
// nodes while the other is parked: they meet and learn each other's IDs.
// After all bit epochs every robot knows the full roster, hence the global
// minimum ID (the leader). In the final epoch the leader parks at its
// start (where every epoch left it) and beacons; every other robot walks
// its tour once and halts at the first node where it hears the leader.
//
// Correct for crash faults (a crashed robot is simply absent from the
// roster); NOT Byzantine-tolerant — a lying walker can split the roster.
// Tests cover the no-fault and crash-fault cases.
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/engine.h"
#include "sim/task.h"

namespace bdg::gather {

struct BitEpochSpec {
  /// Covering tour from the robot's start node, ending back at the start
  /// (oracle-supplied; see covering_walk_ports).
  std::vector<Port> tour;
  /// Epoch length; must be >= the longest tour of any robot (use 2n).
  std::uint32_t epoch_len = 0;
  /// Number of ID bits B; epochs are b = 0..B-1.
  std::uint32_t id_bits = 0;
};

/// Total rounds consumed by the protocol: (id_bits + 1) * epoch_len.
[[nodiscard]] core::Round bit_epoch_total_rounds(const BitEpochSpec& spec);

/// Runs the protocol; on return (after exactly bit_epoch_total_rounds) all
/// live cooperating robots are co-located at the leader's start node.
[[nodiscard]] sim::Task<void> run_bit_epoch_gathering(sim::Ctx ctx,
                                                      BitEpochSpec spec);

}  // namespace bdg::gather
