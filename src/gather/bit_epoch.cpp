#include "gather/bit_epoch.h"

#include <set>
#include <stdexcept>

namespace bdg::gather {
namespace {

enum BitEpochMsg : std::uint32_t {
  kMsgHello = 150,       ///< roster exchange (sender ID is the payload)
  kMsgLeaderHere = 151,  ///< leader beacon in the final epoch
};

}  // namespace

core::Round bit_epoch_total_rounds(const BitEpochSpec& spec) {
  return core::Round(spec.id_bits + 1) * spec.epoch_len;
}

sim::Task<void> run_bit_epoch_gathering(sim::Ctx ctx, BitEpochSpec spec) {
  if (spec.epoch_len < spec.tour.size() + 1)
    throw std::invalid_argument("bit_epoch: epoch_len too small for tour");
  std::set<sim::RobotId> roster{ctx.self()};
  // Round-invariant beacons, pooled once: every per-step send is a
  // refcount bump on one shared block instead of a fresh pool build.
  const util::PayloadRef hello = ctx.make_payload({});

  // Bit epochs: walkers tour, parkers wait; everyone swaps IDs on meeting.
  for (std::uint32_t b = 0; b < spec.id_bits; ++b) {
    const bool active = ((ctx.self() >> b) & 1ULL) != 0;
    for (std::uint32_t step = 0; step < spec.epoch_len; ++step) {
      ctx.broadcast_shared(kMsgHello, hello);
      co_await ctx.next_subround();
      for (const sim::Msg& m : ctx.inbox())
        if (m.kind == kMsgHello) roster.insert(m.claimed);
      std::optional<Port> mv;
      if (active && step < spec.tour.size()) mv = spec.tour[step];
      co_await ctx.end_round(mv);
    }
  }

  // Final epoch: the smallest known ID leads; everyone else walks its tour
  // until it hears the leader's beacon, then halts there.
  const sim::RobotId leader = *roster.begin();
  if (leader == ctx.self()) {
    const util::PayloadRef here = ctx.make_payload({});
    for (std::uint32_t step = 0; step < spec.epoch_len; ++step) {
      ctx.broadcast_shared(kMsgLeaderHere, here);
      co_await ctx.end_round(std::nullopt);
    }
    co_return;
  }
  bool found = false;
  for (std::uint32_t step = 0; step < spec.epoch_len; ++step) {
    co_await ctx.next_subround();
    for (const sim::Msg& m : ctx.inbox())
      if (m.kind == kMsgLeaderHere && m.claimed == leader) found = true;
    std::optional<Port> mv;
    if (!found && step < spec.tour.size()) mv = spec.tour[step];
    co_await ctx.end_round(mv);
  }
}

}  // namespace bdg::gather
