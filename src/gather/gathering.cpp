#include "gather/gathering.h"

#include <stdexcept>

namespace bdg::gather {
namespace {

/// Multiply with saturation at 2^62 (exponential gathering charges would
/// otherwise overflow the round counter).
std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  constexpr std::uint64_t kCap = 1ULL << 62;
  if (a != 0 && b > kCap / a) return kCap;
  return a * b;
}

}  // namespace

std::uint64_t CostModel::explore_rounds(std::uint32_t n) const {
  const std::uint64_t nn = n;
  if (scaled) return 2 * nn + 2;  // concrete covering-walk length
  return sat_mul(sat_mul(nn * nn, nn * nn), nn);  // n^5
}

std::uint32_t CostModel::id_bits(std::uint64_t max_id) {
  std::uint32_t bits = 0;
  while (max_id > 0) {
    ++bits;
    max_id >>= 1;
  }
  return bits == 0 ? 1 : bits;
}

std::uint64_t CostModel::rounds(GatherKind kind, std::uint32_t n,
                                std::uint32_t f,
                                std::uint32_t lambda_bits) const {
  const std::uint64_t nn = n;
  const std::uint64_t x = explore_rounds(n);
  switch (kind) {
    case GatherKind::kNone:
      return 0;
    case GatherKind::kWeakDPP:
      // 4 n^4 P(n, Lambda), P(n, Lambda) = O(Lambda X(n)) ([27]).
      return sat_mul(sat_mul(4 * nn * nn, nn * nn), sat_mul(lambda_bits, x));
    case GatherKind::kSqrtHirose:
      return sat_mul(static_cast<std::uint64_t>(f) + lambda_bits, x);
    case GatherKind::kStrongExp: {
      // Exponential in n; the constant base is not pinned down by [24], we
      // charge 2^n (saturating) plus the strong-gathered suffix cost.
      if (n >= 62) return 1ULL << 62;
      return 1ULL << n;
    }
  }
  throw std::logic_error("CostModel::rounds: bad kind");
}

std::uint64_t CostModel::find_map_rounds(std::uint32_t n) const {
  const std::uint64_t nn = n;
  return nn * nn * nn;
}

sim::Task<void> run_oracle_gathering(sim::Ctx ctx, GatheringSpec spec) {
  if (spec.total_rounds < spec.path_to_rally.size())
    throw std::invalid_argument("run_oracle_gathering: budget < path length");
  std::uint64_t used = 0;
  for (const Port p : spec.path_to_rally) {
    co_await ctx.end_round(p);
    ++used;
  }
  if (used < spec.total_rounds)
    co_await ctx.sleep_rounds(spec.total_rounds - used);
}

}  // namespace bdg::gather
