#include "gather/gathering.h"

#include <stdexcept>

namespace bdg::gather {

using core::Round;

Round CostModel::explore_rounds(std::uint32_t n) const {
  const Round nn = n;
  if (scaled) return 2 * nn + 2;  // concrete covering-walk length
  return nn * nn * nn * nn * nn;  // n^5
}

std::uint32_t CostModel::id_bits(std::uint64_t max_id) {
  std::uint32_t bits = 0;
  while (max_id > 0) {
    ++bits;
    max_id >>= 1;
  }
  return bits == 0 ? 1 : bits;
}

Round CostModel::rounds(GatherKind kind, std::uint32_t n, std::uint32_t f,
                        std::uint32_t lambda_bits) const {
  const Round nn = n;
  const Round x = explore_rounds(n);
  switch (kind) {
    case GatherKind::kNone:
      return 0;
    case GatherKind::kWeakDPP:
      // 4 n^4 P(n, Lambda), P(n, Lambda) = O(Lambda X(n)) ([27]).
      return 4 * nn * nn * nn * nn * Round(lambda_bits) * x;
    case GatherKind::kSqrtHirose:
      return (Round(f) + lambda_bits) * x;
    case GatherKind::kStrongExp: {
      // Exponential in n; [24] pins neither base nor constant, so we
      // charge 2^(n-1) (one bit per unknown peer). The halved exponent
      // also keeps the n = 128 plan total exactly representable in the
      // 128-bit Round — a 2^n charge would already saturate it there.
      (void)f;
      return Round::exp2(n == 0 ? 0 : n - 1);
    }
  }
  throw std::logic_error("CostModel::rounds: bad kind");
}

Round CostModel::find_map_rounds(std::uint32_t n) const {
  const Round nn = n;
  return nn * nn * nn;
}

sim::Task<void> run_oracle_gathering(sim::Ctx ctx, GatheringSpec spec) {
  if (spec.total_rounds < Round(spec.path_to_rally.size()))
    throw std::invalid_argument("run_oracle_gathering: budget < path length");
  std::uint64_t used = 0;
  for (const Port p : spec.path_to_rally) {
    co_await ctx.end_round(p);
    ++used;
  }
  if (Round(used) < spec.total_rounds)
    co_await ctx.sleep_rounds(spec.total_rounds - used);
}

}  // namespace bdg::gather
