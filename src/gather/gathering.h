#pragma once
// Gathering substrate (Phase 1 of the paper's general-graph algorithms).
//
// The paper imports gathering as an opaque subroutine with a known round
// bound: Dieudonne-Pelc-Peleg [24] for up to n-1 weak Byzantine robots
// (4 n^4 P(n, Lambda) rounds ~ O(n^4 |Lambda| X(n))), Hirose et al. [27]
// for f = O(sqrt(n)) (O((f + |Lambda|) X(n)) rounds), and [24]'s strong
// variant (exponential rounds, f known). Only the post-condition matters
// to this paper: all non-Byzantine robots co-located; Byzantine robots
// anywhere (including the rally point); plus the round charge.
//
// Our substitution (see DESIGN.md §3): honest robots physically walk an
// oracle-provided path to the rally node and then idle out the imported
// round bound, which the engine fast-forwards. The adversary keeps full
// freedom to position Byzantine robots during the phase.
#include <cstdint>
#include <vector>

#include "core/round.h"
#include "graph/graph.h"
#include "sim/engine.h"
#include "sim/task.h"

namespace bdg::gather {

/// Which imported bound to charge for Phase 1.
enum class GatherKind {
  kNone,         ///< robots start gathered; zero rounds
  kWeakDPP,      ///< [24] weak-Byzantine gathering, O(n^4 Lambda X(n))
  kSqrtHirose,   ///< [27], O((f + Lambda) X(n))
  kStrongExp,    ///< [24] strong gathering via groups, exponential, f known
};

/// Round-charge models. `scaled` replaces the theoretical X(n) = n^5 with
/// the concrete covering-walk length (~2n), keeping totals interpretable in
/// benchmark sweeps while preserving relative shape; `theory` charges the
/// paper's cited bounds verbatim. All charges are saturating 128-bit
/// core::Round values: a bound past 2^128-1 reports is_saturated() instead
/// of silently capping (the old 2^62 clamp), and the scenario harness
/// refuses to run a saturated plan.
struct CostModel {
  bool scaled = true;

  /// X(n): rounds to explore any n-node graph ([2,45]: ~n^5 up to logs).
  [[nodiscard]] core::Round explore_rounds(std::uint32_t n) const;
  /// Bit-length of the largest robot ID (|Lambda|), IDs from [1, n^c].
  [[nodiscard]] static std::uint32_t id_bits(std::uint64_t max_id);

  [[nodiscard]] core::Round rounds(GatherKind kind, std::uint32_t n,
                                   std::uint32_t f,
                                   std::uint32_t lambda_bits) const;

  /// Charge for Find-Map (Theorem 1's per-robot quotient construction,
  /// polynomial in n per Czyzowicz et al. [16]); we charge n^3.
  [[nodiscard]] core::Round find_map_rounds(std::uint32_t n) const;
};

struct GatheringSpec {
  /// Oracle path from the robot's start to the rally node (harness-supplied;
  /// see DESIGN.md substitution 2).
  std::vector<Port> path_to_rally;
  /// Total charged rounds of the phase; must be >= path length.
  core::Round total_rounds = 0;
};

/// Walk to the rally node, then idle until the charged phase ends. The
/// idle tail is slept in ONE jump (the engine fast-forwards it), and the
/// task returns after EXACTLY spec.total_rounds rounds — the tournament's
/// pairing-window synchrony invariant (both partners of every window end
/// it on the same round, checked in core/tournament_dispersion.cpp) rests
/// on this phase-length exactness.
[[nodiscard]] sim::Task<void> run_oracle_gathering(sim::Ctx ctx,
                                                   GatheringSpec spec);

}  // namespace bdg::gather
